//! # serde_json (workspace shim)
//!
//! JSON serialization and parsing for the workspace `serde` shim. The
//! surface mirrors the parts of the real `serde_json` this repository uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`from_value`] and an [`Error`] type.
//!
//! Output is deterministic: object fields keep their insertion order and
//! floats are rendered with Rust's shortest round-trip formatting (with a
//! `.0` suffix for integral values, matching `serde_json`). Non-finite
//! floats render as `null`, as in the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as an indented (2-space) JSON string.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a deserializable type from a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] if the tree does not match the expected shape.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Parses a JSON string into a deserializable type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or on a shape mismatch.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = f.to_string();
    out.push_str(&s);
    // Match serde_json: integral floats carry a `.0` so the value parses
    // back as a float.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a JSON document into a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax problem found.
pub fn parse_value(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain (unescaped, ASCII-or-UTF-8) run.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_matches_expectations() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::Float(1.5)),
            ("d".into(), Value::Float(2.0)),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":[true,null],"c":1.5,"d":2.0}"#
        );
    }

    #[test]
    fn pretty_rendering_is_indented() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::UInt(7)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"k\": [\n    7\n  ]\n}"
        );
    }

    #[test]
    fn parse_round_trips() {
        let text = r#"{"name":"x \"y\"","vals":[1,-2,3.25],"flag":false,"none":null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn floats_round_trip_losslessly() {
        for &f in &[
            1.0f64,
            -0.1,
            1e-10,
            123456.789,
            f64::MIN_POSITIVE,
            0.30000000000000004,
        ] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "round-trip of {f} via `{s}` failed");
        }
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("\"open").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: String = from_str(r#""Aé 😀""#).unwrap();
        assert_eq!(v, "Aé 😀");
    }
}
