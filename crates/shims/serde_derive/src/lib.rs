//! # serde_derive (workspace shim)
//!
//! Derive macros for the workspace `serde` shim's `Serialize` /
//! `Deserialize` traits. Because the build environment has no crates.io
//! access, this is written against the bare `proc_macro` API — the item is
//! parsed by walking its token trees and the impls are emitted as source
//! strings.
//!
//! Supported shapes (everything this workspace derives on):
//!
//! * structs with named fields, tuple structs (newtype included), unit
//!   structs;
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde);
//! * `#[serde(skip)]` on named fields — omitted when serializing, filled
//!   from `Default` when deserializing;
//! * `#[serde(default)]` on named struct fields — serialized normally,
//!   filled from the struct's `Default` instance when the field is absent
//!   (the containing struct must implement `Default`; not supported inside
//!   enum variants).

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the workspace `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the workspace `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Item model.
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

/// Consumes leading `#[...]` attributes, returning `(skip, default)` flags
/// from any `#[serde(...)]` attribute among them.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> (bool, bool) {
    let mut skip = false;
    let mut default = false;
    while *pos + 1 < tokens.len() {
        match (&tokens[*pos], &tokens[*pos + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let body = g.stream().to_string();
                if body.starts_with("serde") {
                    if body.contains("skip") {
                        skip = true;
                    }
                    if body.contains("default") {
                        default = true;
                    }
                }
                *pos += 2;
            }
            _ => break,
        }
    }
    (skip, default)
}

/// Consumes `pub`, `pub(crate)`, `pub(in ...)` if present.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Consumes tokens until a top-level comma (tracking `<`/`>` depth so commas
/// inside generic arguments don't terminate the scan). Leaves `pos` on the
/// comma or at end-of-stream.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Parses `name: Type, ...` named fields (attributes and visibility
/// allowed), as found in struct bodies and struct-variant bodies.
fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (skip, default) = skip_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("expected field name, found `{other}`"),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&tokens, &mut pos);
        // Consume the trailing comma, if any.
        pos += 1;
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break; // Trailing comma.
        }
        skip_type(&tokens, &mut pos);
        pos += 1; // Past the comma.
        count += 1;
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("expected variant name, found `{other}`"),
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the variant comma.
        while let Some(tok) = tokens.get(pos) {
            if let TokenTree::Punct(p) = tok {
                if p.as_char() == ',' {
                    break;
                }
            }
            pos += 1;
        }
        pos += 1; // Past the comma.
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    // Container-level `#[serde(default)]`: every missing field falls back to
    // the struct's `Default` instance (matching real serde's semantics).
    let (_, container_default) = skip_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    pos += 1;
    // Generic parameters are not supported (nothing in the workspace derives
    // on a generic type); fail loudly rather than generating broken code.
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic type `{name}`");
        }
    }
    let body = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let mut fields = parse_named_fields(g.stream());
                if container_default {
                    for field in &mut fields {
                        field.default = true;
                    }
                }
                Body::NamedStruct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    };
    Item { name, body }
}

// ---------------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            s.push_str("::serde::Value::Object(__fields)");
            s
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), {inner})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(::std::vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

/// `defaults_var`, when set, names a local binding holding the struct's
/// `Default` instance — the fallback source for `#[serde(default)]` fields.
fn named_field_initializers(fields: &[Field], source: &str, defaults_var: Option<&str>) -> String {
    fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: ::core::default::Default::default(),\n", f.name)
            } else if f.default {
                let defaults = defaults_var.unwrap_or_else(|| {
                    panic!(
                        "#[serde(default)] on field `{}` is only supported in plain structs",
                        f.name
                    )
                });
                format!(
                    "{n}: match {source}.field(\"{n}\") {{\n\
                         ::std::result::Result::Ok(__v) => ::serde::Deserialize::from_value(__v)?,\n\
                         ::std::result::Result::Err(_) => {defaults}.{n},\n\
                     }},\n",
                    n = f.name
                )
            } else {
                format!(
                    "{n}: ::serde::Deserialize::from_value({source}.field(\"{n}\")?)?,\n",
                    n = f.name
                )
            }
        })
        .collect()
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            // `#[serde(default)]` fields fall back to the struct's own
            // `Default` instance, so a missing field gets the same value a
            // default-constructed struct carries (not the field type's
            // zero-ish default).
            let prelude = if fields.iter().any(|f| f.default) {
                format!("let __defaults: {name} = ::core::default::Default::default();\n")
            } else {
                String::new()
            };
            format!(
                "{prelude}::std::result::Result::Ok({name} {{\n{}}})",
                named_field_initializers(fields, "__value", Some("__defaults"))
            )
        }
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __value {{\n\
                     ::serde::Value::Array(__items) if __items.len() == {n} =>\n\
                         ::std::result::Result::Ok({name}({items})),\n\
                     __other => ::std::result::Result::Err(::serde::DeError::new(\n\
                         ::std::format!(\"expected {n}-element array for {name}, found {{}}\", __other.kind()))),\n\
                 }}",
                items = items.join(", ")
            )
        }
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => match __inner {{\n\
                                 ::serde::Value::Array(__items) if __items.len() == {n} =>\n\
                                     ::std::result::Result::Ok({name}::{vn}({items})),\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::new(\n\
                                     ::std::format!(\"expected {n}-element array for {name}::{vn}, found {{}}\", __other.kind()))),\n\
                             }},\n",
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{\n{}}}),\n",
                        named_field_initializers(fields, "__inner", None)
                    )),
                }
            }
            format!(
                "match __value {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(::serde::DeError::new(\n\
                             ::std::format!(\"unknown unit variant `{{}}` of {name}\", __other))),\n\
                     }},\n\
                     ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\
                             __other => ::std::result::Result::Err(::serde::DeError::new(\n\
                                 ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::new(\n\
                         ::std::format!(\"expected a {name} variant, found {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}
