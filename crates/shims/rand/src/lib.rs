//! # rand (workspace shim)
//!
//! The build environment of this repository has no access to crates.io, so
//! the external `rand` crate is replaced by this minimal, API-compatible
//! shim. It implements exactly the surface the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range`, `gen_bool` and `gen`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates) and `choose`.
//!
//! The streams produced are deterministic for a given seed but are **not**
//! bit-compatible with the upstream `rand` crate; every consumer in this
//! workspace only relies on determinism, never on the reference stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The core of a random number generator: a source of uniform raw bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable generator, constructed deterministically from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (a half-open `lo..hi` range of
    /// any supported integer or float type).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of a [`Standard`]-distributed type (`f32`/`f64` in
    /// `[0, 1)`, raw integers otherwise).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Converts 32 random bits into a uniform `f32` in `[0, 1)`.
fn unit_f32(bits: u32) -> f32 {
    (bits >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Types that can be sampled from their "standard" distribution by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u32())
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Unbiased sampling by rejection on the widening multiply.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let threshold = span.wrapping_neg() % span;
                    while lo < threshold {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start.wrapping_add((m >> 64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = (0u64..span).sample_single(rng);
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f32(rng.next_u32()) * (self.end - self.start)
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if the slice is
        /// empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..i + 1).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_single(rng)])
            }
        }
    }
}

/// Ready-made generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: splitmix64-seeded xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut state: u64) -> Self {
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self::from_state(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let g = rng.gen_range(-0.25f32..0.25);
            assert!((-0.25..0.25).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits} hits");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
        assert!(v.choose(&mut rng).is_some());
    }
}
