//! # serde (workspace shim)
//!
//! The build environment has no crates.io access, so this crate replaces the
//! external `serde` with a small value-tree serialization framework exposing
//! the same import surface the workspace uses:
//!
//! * `use serde::{Serialize, Deserialize};` brings in both the traits and
//!   the derive macros (re-exported from the `serde_derive` shim),
//! * `#[serde(skip)]` on a field omits it from serialization and fills it
//!   from `Default` on deserialization.
//!
//! Instead of serde's visitor architecture, types convert to and from a
//! JSON-like [`Value`] tree; the `serde_json` shim renders and parses that
//! tree. Object fields keep insertion order, so serialization is fully
//! deterministic — a property the campaign engine's parallel-equals-serial
//! guarantee relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-like value tree: the intermediate representation all
/// (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (used for negative numbers).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An object whose fields keep insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `name` in an object.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an object or lacks the field.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
            other => Err(DeError::new(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// A short human-readable description of the value's variant.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] if the tree does not match the expected shape.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive implementations.
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw: u64 = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(DeError::new(format!(
                        concat!("expected ", stringify!($t), ", found {}"), other.kind()))),
                };
                <$t>::try_from(raw).map_err(|_| DeError::new(
                    format!(concat!("value {} out of range for ", stringify!($t)), raw)))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u).map_err(|_| {
                        DeError::new(format!("value {u} out of range for i64"))
                    })?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError::new(format!(
                        concat!("expected ", stringify!($t), ", found {}"), other.kind()))),
                };
                <$t>::try_from(raw).map_err(|_| DeError::new(
                    format!(concat!("value {} out of range for ", stringify!($t)), raw)))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::new(format!(
                "expected f64, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!(
                "expected char, found {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container implementations.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::new(format!(
                "expected 2-tuple, found {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::new(format!(
                "expected 3-tuple, found {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization of hash maps is deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::new(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let s: Option<u8> = Some(9);
        assert_eq!(Option::<u8>::from_value(&s.to_value()).unwrap(), Some(9));
        let t = (1u8, "x".to_string());
        assert_eq!(<(u8, String)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn field_lookup_errors_are_informative() {
        let obj = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert!(obj.field("a").is_ok());
        let err = obj.field("b").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
        assert!(Value::Null.field("a").is_err());
    }

    #[test]
    fn out_of_range_integers_are_rejected() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
