//! The related-works comparison behind Table 4.

use crate::area::AreaModel;
use serde::{Deserialize, Serialize};

/// One row of the Table 4 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonEntry {
    /// Citation label used in the paper ("[2]", "[13]", "[8]", "Our Work").
    pub work: String,
    /// The ML model(s) the scheme uses.
    pub ml_model: String,
    /// Whether the scheme targets flooding DoS specifically.
    pub targets_fdos: bool,
    /// Hardware overhead as a fraction of router/NoC area
    /// (`None` when the original work does not report it).
    pub hardware_overhead: Option<f64>,
    /// Whether the overhead is per-router (distributed) or global.
    pub distributed: bool,
    /// Largest NoC scale evaluated (mesh side length).
    pub noc_scale: usize,
    /// Reported detection accuracy (`None` if not reported).
    pub detection_accuracy: Option<f64>,
    /// Reported detection precision.
    pub detection_precision: Option<f64>,
    /// Reported localization accuracy.
    pub localization_accuracy: Option<f64>,
    /// Reported localization precision.
    pub localization_precision: Option<f64>,
}

/// The literature rows of Table 4 (values as reported by the cited works).
pub fn related_works() -> Vec<ComparisonEntry> {
    vec![
        ComparisonEntry {
            work: "[2] Sniffer".to_string(),
            ml_model: "Perceptron".to_string(),
            targets_fdos: true,
            hardware_overhead: Some(0.033),
            distributed: true,
            noc_scale: 8,
            detection_accuracy: Some(0.976),
            detection_precision: None,
            localization_accuracy: Some(0.967),
            localization_precision: None,
        },
        ComparisonEntry {
            work: "[13] Kulkarni et al.".to_string(),
            ml_model: "SVM".to_string(),
            targets_fdos: false,
            hardware_overhead: Some(0.09),
            distributed: true,
            noc_scale: 4,
            detection_accuracy: Some(0.955),
            detection_precision: Some(0.945),
            localization_accuracy: None,
            localization_precision: None,
        },
        ComparisonEntry {
            work: "[8] Sudusinghe et al.".to_string(),
            ml_model: "XGBoost".to_string(),
            targets_fdos: true,
            hardware_overhead: None,
            distributed: false,
            noc_scale: 4,
            detection_accuracy: Some(0.96),
            detection_precision: Some(0.948),
            localization_accuracy: None,
            localization_precision: None,
        },
    ]
}

/// Builds the "Our Work" row from the analytical area model and measured
/// detection/localization metrics.
pub fn our_work_entry(
    model: &AreaModel,
    mesh_side: usize,
    detection_accuracy: f64,
    detection_precision: f64,
    localization_accuracy: f64,
    localization_precision: f64,
) -> ComparisonEntry {
    ComparisonEntry {
        work: "Our Work (DL2Fence)".to_string(),
        ml_model: "CNN Classifier + Segmentor".to_string(),
        targets_fdos: true,
        hardware_overhead: Some(model.dl2fence_overhead(mesh_side)),
        distributed: false,
        noc_scale: mesh_side,
        detection_accuracy: Some(detection_accuracy),
        detection_precision: Some(detection_precision),
        localization_accuracy: Some(localization_accuracy),
        localization_precision: Some(localization_precision),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn related_works_has_three_entries() {
        let works = related_works();
        assert_eq!(works.len(), 3);
        assert!(works.iter().any(|w| w.ml_model == "Perceptron"));
        assert!(works.iter().any(|w| w.ml_model == "SVM"));
        assert!(works.iter().any(|w| w.ml_model == "XGBoost"));
    }

    #[test]
    fn our_entry_reports_lower_overhead_than_distributed_schemes_at_16x16() {
        let model = AreaModel::default();
        let ours = our_work_entry(&model, 16, 0.958, 0.985, 0.917, 0.993);
        let sniffer = &related_works()[0];
        assert!(ours.hardware_overhead.unwrap() < sniffer.hardware_overhead.unwrap());
        assert_eq!(ours.noc_scale, 16);
        assert!(!ours.distributed);
    }

    #[test]
    fn our_entry_carries_measured_metrics() {
        let model = AreaModel::default();
        let ours = our_work_entry(&model, 8, 0.9, 0.95, 0.85, 0.97);
        assert_eq!(ours.detection_accuracy, Some(0.9));
        assert_eq!(ours.localization_precision, Some(0.97));
    }

    #[test]
    fn literature_values_match_paper_table() {
        let works = related_works();
        assert_eq!(works[0].hardware_overhead, Some(0.033));
        assert_eq!(works[1].hardware_overhead, Some(0.09));
        assert_eq!(works[2].hardware_overhead, None);
        assert_eq!(works[0].detection_accuracy, Some(0.976));
    }
}
