//! # hw-overhead — analytical hardware area model for DL2Fence
//!
//! The paper synthesizes two CNN accelerators (one detector, one localizer,
//! each built from three pipelined convolution kernels) next to a
//! ProNoC-generated mesh and reports the accelerator area as a fraction of
//! the NoC area: **7.4 % on 4×4, 1.9 % on 8×8, 0.45 % on 16×16 and 0.11 % on
//! 32×32** (Figure 5), plus a comparison against distributed per-router
//! schemes (Table 4).
//!
//! ASIC synthesis is not available in this reproduction, so this crate models
//! the area analytically:
//!
//! * the NoC area grows with the number of routers and links (routers
//!   dominate; each has 5 ports × VCs × buffer depth of flit storage plus a
//!   crossbar and allocators);
//! * the DL2Fence accelerators are **global** — exactly two of them serve the
//!   whole chip, so their area is *constant* in mesh size;
//! * distributed schemes add a fixed per-router overhead, so their relative
//!   cost never amortises with mesh size.
//!
//! The accelerator area constant is calibrated so the model reproduces the
//! paper's published overhead points; the NoC per-router area uses
//! gate-count estimates typical of an open-source VC router. The headline
//! claim — overhead falls roughly as `1/N²` and drops by ≈76 % from 8×8 to
//! 16×16 — is a structural property the model preserves. See DESIGN.md for
//! the substitution note.
//!
//! ## Quick example
//!
//! ```
//! use hw_overhead::{AreaModel, RouterParams};
//!
//! let model = AreaModel::new(RouterParams::default());
//! let overhead_8 = model.dl2fence_overhead(8);
//! let overhead_16 = model.dl2fence_overhead(16);
//! assert!(overhead_16 < overhead_8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod comparison;

pub use area::{AreaModel, RouterParams};
pub use comparison::{related_works, ComparisonEntry};
