//! Gate-count area model of mesh routers, links and the two DL2Fence CNN
//! accelerators.

use serde::{Deserialize, Serialize};

/// Micro-architectural parameters of one virtual-channel mesh router and its
/// links, expressed in gate equivalents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterParams {
    /// Flit width in bits.
    pub flit_width_bits: usize,
    /// Virtual channels per input port.
    pub vcs_per_port: usize,
    /// Buffer depth (flits) per VC.
    pub buffer_depth: usize,
    /// Router ports (5 for a mesh router: E, N, W, S, Local).
    pub ports: usize,
    /// Gate equivalents per buffered bit (flip-flop plus mux overhead).
    pub gates_per_buffer_bit: f64,
    /// Gate equivalents per crossbar bit-crosspoint.
    pub gates_per_crossbar_bit: f64,
    /// Fixed gate cost of the VC and switch allocators.
    pub allocator_gates: f64,
    /// Gate equivalents per link bit (driver/repeater proxy).
    pub gates_per_link_bit: f64,
}

impl Default for RouterParams {
    fn default() -> Self {
        RouterParams {
            flit_width_bits: 128,
            vcs_per_port: 4,
            buffer_depth: 4,
            ports: 5,
            gates_per_buffer_bit: 2.2,
            gates_per_crossbar_bit: 0.6,
            allocator_gates: 2_500.0,
            gates_per_link_bit: 2.0,
        }
    }
}

impl RouterParams {
    /// Gate-equivalent area of one router.
    pub fn router_gates(&self) -> f64 {
        let buffer_bits =
            (self.ports * self.vcs_per_port * self.buffer_depth * self.flit_width_bits) as f64;
        let crossbar_bits = (self.ports * self.ports * self.flit_width_bits) as f64;
        buffer_bits * self.gates_per_buffer_bit
            + crossbar_bits * self.gates_per_crossbar_bit
            + self.allocator_gates
    }

    /// Gate-equivalent area of one unidirectional link.
    pub fn link_gates(&self) -> f64 {
        self.flit_width_bits as f64 * self.gates_per_link_bit
    }
}

/// Parameters of one lightweight CNN accelerator (three pipelined convolution
/// kernels, per the paper's implementation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorParams {
    /// Number of trainable parameters stored on chip.
    pub weight_count: usize,
    /// Weight precision in bits.
    pub weight_bits: usize,
    /// Gate equivalents per stored weight bit (SRAM).
    pub gates_per_weight_bit: f64,
    /// Pipelined multiply–accumulate units (the paper uses three kernels).
    pub mac_units: usize,
    /// Gate equivalents per MAC unit at the chosen precision.
    pub gates_per_mac: f64,
    /// Fixed control/sequencing logic.
    pub control_gates: f64,
}

impl AcceleratorParams {
    /// The DoS-detector accelerator: one 8-kernel 3×3 conv layer plus a dense
    /// layer sized for a 16×16 mesh frame.
    pub fn detector() -> Self {
        // conv: 8·4·3·3 + 8 bias; dense: (8·7·7)→1 + 1 bias (the 16×16-mesh
        // frame is 14×14 after the valid 3×3 conv and 7×7 after pooling).
        let weights = 8 * 4 * 3 * 3 + 8 + 8 * 7 * 7 + 1;
        AcceleratorParams {
            weight_count: weights,
            weight_bits: 16,
            gates_per_weight_bit: 1.0,
            mac_units: 3,
            gates_per_mac: 3_000.0,
            control_gates: 2_000.0,
        }
    }

    /// The DoS-localizer accelerator: three 8-kernel 3×3 conv layers.
    pub fn localizer() -> Self {
        let weights = 8 * 3 * 3 + 8 + 8 * 8 * 3 * 3 + 8 + 8 * 3 * 3 + 1;
        AcceleratorParams {
            weight_count: weights,
            weight_bits: 16,
            gates_per_weight_bit: 1.0,
            mac_units: 3,
            gates_per_mac: 3_000.0,
            control_gates: 2_000.0,
        }
    }

    /// Gate-equivalent area of this accelerator.
    pub fn gates(&self) -> f64 {
        (self.weight_count * self.weight_bits) as f64 * self.gates_per_weight_bit
            + self.mac_units as f64 * self.gates_per_mac
            + self.control_gates
    }
}

/// The analytical area model used for Figure 5 and Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    router: RouterParams,
    detector: AcceleratorParams,
    localizer: AcceleratorParams,
}

impl AreaModel {
    /// Creates the model from router parameters, with the paper's two
    /// accelerator configurations.
    pub fn new(router: RouterParams) -> Self {
        AreaModel {
            router,
            detector: AcceleratorParams::detector(),
            localizer: AcceleratorParams::localizer(),
        }
    }

    /// Overrides the accelerator configurations (used by the depth ablation).
    pub fn with_accelerators(
        mut self,
        detector: AcceleratorParams,
        localizer: AcceleratorParams,
    ) -> Self {
        self.detector = detector;
        self.localizer = localizer;
        self
    }

    /// The router parameters.
    pub fn router_params(&self) -> RouterParams {
        self.router
    }

    /// Total NoC gate area of an `n × n` mesh (routers plus links, no tiles —
    /// matching the paper's "routers, network interfaces and links" basis).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn noc_gates(&self, n: usize) -> f64 {
        assert!(n > 0, "mesh size must be non-zero");
        let routers = (n * n) as f64 * self.router.router_gates();
        // 2·n·(n−1) bidirectional links = 4·n·(n−1) unidirectional channels.
        let links = (4 * n * (n - 1)) as f64 * self.router.link_gates();
        routers + links
    }

    /// Combined gate area of the two global DL2Fence accelerators
    /// (independent of mesh size).
    pub fn dl2fence_gates(&self) -> f64 {
        self.detector.gates() + self.localizer.gates()
    }

    /// DL2Fence hardware overhead on an `n × n` mesh:
    /// accelerator area / NoC area.
    pub fn dl2fence_overhead(&self, n: usize) -> f64 {
        self.dl2fence_gates() / self.noc_gates(n)
    }

    /// Overhead of a *distributed* scheme that adds `per_router_fraction`
    /// (e.g. 0.033 for Sniffer's 3.3 %) of a router's area to every router —
    /// constant in mesh size, shown for contrast in Table 4.
    pub fn distributed_overhead(&self, per_router_fraction: f64) -> f64 {
        per_router_fraction
    }

    /// The relative overhead reduction between two mesh sizes, e.g.
    /// `overhead_reduction(8, 16)` reproduces the paper's "76.3 % decrease
    /// when scaling from 8×8 to 16×16".
    pub fn overhead_reduction(&self, from: usize, to: usize) -> f64 {
        let a = self.dl2fence_overhead(from);
        let b = self.dl2fence_overhead(to);
        (a - b) / a
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::new(RouterParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn accelerator_area_is_tens_of_kilogates() {
        let total = AreaModel::default().dl2fence_gates();
        assert!(
            (20_000.0..100_000.0).contains(&total),
            "two tiny CNN accelerators should be a few tens of kGE, got {total}"
        );
    }

    #[test]
    fn overhead_decreases_with_mesh_size() {
        let m = AreaModel::default();
        let o4 = m.dl2fence_overhead(4);
        let o8 = m.dl2fence_overhead(8);
        let o16 = m.dl2fence_overhead(16);
        let o32 = m.dl2fence_overhead(32);
        assert!(o4 > o8 && o8 > o16 && o16 > o32);
    }

    #[test]
    fn overhead_scales_roughly_as_inverse_square() {
        let m = AreaModel::default();
        let ratio = m.dl2fence_overhead(8) / m.dl2fence_overhead(16);
        assert!(
            (3.4..4.6).contains(&ratio),
            "8x8 vs 16x16 overhead ratio should be ~4x, got {ratio}"
        );
    }

    #[test]
    fn reduction_from_8_to_16_matches_paper_claim() {
        // Paper: 76.3 % decrease from 8x8 to 16x16.
        let r = AreaModel::default().overhead_reduction(8, 16);
        assert!(
            (0.70..0.82).contains(&r),
            "reduction should be close to 76 %, got {}",
            r * 100.0
        );
    }

    #[test]
    fn overhead_magnitudes_are_in_the_papers_regime() {
        let m = AreaModel::default();
        // Paper: 1.9 % at 8x8 and 0.45 % at 16x16. The analytical model only
        // needs to land in the same regime (single-digit percent at 8x8,
        // sub-percent at 16x16).
        assert!(m.dl2fence_overhead(8) < 0.06);
        assert!(m.dl2fence_overhead(8) > 0.005);
        assert!(m.dl2fence_overhead(16) < 0.015);
        assert!(m.dl2fence_overhead(32) < 0.004);
    }

    #[test]
    fn global_scheme_beats_distributed_on_large_meshes() {
        let m = AreaModel::default();
        // Sniffer reports 3.3 % per router, constant in size.
        let sniffer = m.distributed_overhead(0.033);
        assert!(m.dl2fence_overhead(16) < sniffer);
        assert!(m.dl2fence_overhead(32) < sniffer);
    }

    #[test]
    fn router_area_dominated_by_buffers() {
        let p = RouterParams::default();
        let buffer_gates = (p.ports * p.vcs_per_port * p.buffer_depth * p.flit_width_bits) as f64
            * p.gates_per_buffer_bit;
        assert!(buffer_gates > 0.5 * p.router_gates());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_mesh_panics() {
        AreaModel::default().noc_gates(0);
    }

    proptest! {
        #[test]
        fn overhead_is_monotonically_decreasing(n in 2usize..40) {
            let m = AreaModel::default();
            prop_assert!(m.dl2fence_overhead(n + 1) < m.dl2fence_overhead(n));
        }

        #[test]
        fn noc_area_grows_superlinearly(n in 2usize..40) {
            let m = AreaModel::default();
            prop_assert!(m.noc_gates(2 * n) > 3.9 * m.noc_gates(n));
        }
    }
}
