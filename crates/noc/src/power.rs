//! A simple activity-based energy model.
//!
//! The paper motivates flooding DoS partly through "a surge in power
//! consumption". This module turns the simulator's activity counters
//! (buffer operations, link traversals, cycles) into energy estimates so
//! that effect can be quantified alongside the latency impact of Figure 1.
//!
//! The per-event energies are representative 32 nm-class values (in
//! picojoules) of the kind used by NoC power models such as DSENT/Orion;
//! only the *relative* growth with the flooding injection rate matters for
//! the reproduction.

use crate::stats::NetworkStats;
use serde::{Deserialize, Serialize};

/// Per-event and static energy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per buffer read or write, in picojoules.
    pub pj_per_buffer_op: f64,
    /// Energy per flit link traversal (wire + crossbar), in picojoules.
    pub pj_per_link_traversal: f64,
    /// Energy per flit injection/ejection at a network interface, in
    /// picojoules.
    pub pj_per_ni_event: f64,
    /// Static (leakage + clock) power per router, in milliwatts.
    pub static_mw_per_router: f64,
    /// Clock frequency in GHz (the paper's system clock is 2 GHz).
    pub clock_ghz: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            pj_per_buffer_op: 1.2,
            pj_per_link_traversal: 2.0,
            pj_per_ni_event: 0.8,
            static_mw_per_router: 0.5,
            clock_ghz: 2.0,
        }
    }
}

/// The energy breakdown of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Dynamic energy spent in buffers, in nanojoules.
    pub buffer_nj: f64,
    /// Dynamic energy spent on links/crossbars, in nanojoules.
    pub link_nj: f64,
    /// Dynamic energy spent at network interfaces, in nanojoules.
    pub ni_nj: f64,
    /// Static energy over the simulated interval, in nanojoules.
    pub static_nj: f64,
    /// Total energy, in nanojoules.
    pub total_nj: f64,
    /// Average power over the simulated interval, in milliwatts.
    pub average_mw: f64,
}

impl EnergyModel {
    /// Creates the default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Estimates the energy of a run from its statistics and the number of
    /// routers in the mesh.
    ///
    /// # Panics
    ///
    /// Panics if `router_count` is zero.
    pub fn estimate(&self, stats: &NetworkStats, router_count: usize) -> EnergyReport {
        assert!(router_count > 0, "router count must be non-zero");
        let buffer_nj = stats.buffer_operations as f64 * self.pj_per_buffer_op / 1_000.0;
        let link_nj = stats.link_traversals as f64 * self.pj_per_link_traversal / 1_000.0;
        let ni_events = stats.flits_injected + stats.flits_received;
        let ni_nj = ni_events as f64 * self.pj_per_ni_event / 1_000.0;
        let seconds = if self.clock_ghz > 0.0 {
            stats.cycles as f64 / (self.clock_ghz * 1e9)
        } else {
            0.0
        };
        let static_nj = self.static_mw_per_router * router_count as f64 * seconds * 1e6;
        let total_nj = buffer_nj + link_nj + ni_nj + static_nj;
        let average_mw = if seconds > 0.0 {
            total_nj / 1e6 / seconds
        } else {
            0.0
        };
        EnergyReport {
            buffer_nj,
            link_nj,
            ni_nj,
            static_nj,
            total_nj,
            average_mw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;
    use crate::network::Network;
    use crate::topology::NodeId;

    fn run(packets: usize) -> NetworkStats {
        let mut net = Network::new(NocConfig::mesh(4, 4));
        for i in 0..packets {
            net.enqueue_packet(NodeId(i % 16), NodeId((i * 5 + 3) % 16), 0);
        }
        net.run(2_000);
        net.stats().clone()
    }

    #[test]
    fn idle_network_consumes_only_static_energy() {
        let mut net = Network::new(NocConfig::mesh(4, 4));
        net.run(1_000);
        let report = EnergyModel::new().estimate(net.stats(), 16);
        assert_eq!(report.buffer_nj, 0.0);
        assert_eq!(report.link_nj, 0.0);
        assert!(report.static_nj > 0.0);
        assert!((report.total_nj - report.static_nj).abs() < 1e-9);
    }

    #[test]
    fn more_traffic_means_more_dynamic_energy() {
        let light = EnergyModel::new().estimate(&run(4), 16);
        let heavy = EnergyModel::new().estimate(&run(64), 16);
        assert!(heavy.buffer_nj > light.buffer_nj);
        assert!(heavy.link_nj > light.link_nj);
        assert!(heavy.total_nj > light.total_nj);
    }

    #[test]
    fn average_power_is_consistent_with_energy_and_time() {
        let stats = run(32);
        let model = EnergyModel::new();
        let report = model.estimate(&stats, 16);
        let seconds = stats.cycles as f64 / (model.clock_ghz * 1e9);
        let expected_mw = report.total_nj / 1e6 / seconds;
        assert!((report.average_mw - expected_mw).abs() < 1e-9);
        assert!(report.average_mw > 0.0);
    }

    #[test]
    fn activity_counters_are_populated_by_the_simulator() {
        let stats = run(32);
        assert!(stats.buffer_operations > 0);
        assert!(stats.link_traversals > 0);
        // Every link traversal implies a pop and a push, plus injections and
        // ejections also touch buffers.
        assert!(stats.buffer_operations > stats.link_traversals);
    }

    #[test]
    #[should_panic(expected = "router count")]
    fn zero_router_count_panics() {
        EnergyModel::new().estimate(&NetworkStats::new(4), 0);
    }
}
