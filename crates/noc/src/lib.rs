//! # noc-sim — a flit-level Network-on-Chip simulator
//!
//! This crate is the substrate the DL2Fence reproduction runs on. It plays
//! the role Garnet (inside gem5) plays in the paper: a cycle-level model of
//! a NoC — a 2-D mesh, a 2-D torus with wraparound links, or a
//! routerless-style ring (see [`Topology`]) — with
//!
//! * wormhole switching with **virtual channels** (VCs),
//! * **credit-based flow control** (a flit only advances when the downstream
//!   buffer has a free slot),
//! * deterministic **minimal routing** (XY dimension-order on the mesh;
//!   shortest-way-around dimension-order on torus/ring, with wrap hops
//!   confined to the upper VC class to stay deadlock-free),
//! * per-input-port **buffer operation counters** (BOC) and instantaneous
//!   **virtual-channel occupancy** (VCO) — the two features DL2Fence samples,
//! * packet/flit latency accounting split into queueing and network
//!   components (used to reproduce Figure 1).
//!
//! The node numbering convention follows the paper's Table-Like Method:
//! node `id = y * cols + x`, the **East** neighbour is `id + 1`, **West** is
//! `id − 1`, **North** is `id + cols` and **South** is `id − cols`. A
//! router's *East input port* therefore receives flits sent by its East
//! neighbour.
//!
//! ## Quick example
//!
//! ```
//! use noc_sim::{Network, NocConfig, NodeId};
//!
//! let config = NocConfig::mesh(4, 4);
//! let mut net = Network::new(config);
//! net.enqueue_packet(NodeId(0), NodeId(15), 0);
//! for _ in 0..200 { net.step(); }
//! assert_eq!(net.stats().packets_received, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod flit;
pub mod network;
pub mod power;
pub mod router;
pub mod routing;
pub mod stats;
pub mod topology;
pub mod vc;

pub use config::NocConfig;
pub use flit::{Flit, FlitKind, Packet, PacketId};
pub use network::Network;
pub use power::{EnergyModel, EnergyReport};
pub use router::Router;
pub use routing::{route_path, xy_next_hop};
pub use stats::{LatencyStats, NetworkStats};
pub use topology::{Coord, Direction, Mesh, NodeId, Topology, TopologyError, TopologyKind};
