//! Virtual channels and router input ports.

use crate::flit::Flit;
use crate::topology::Direction;
use std::collections::VecDeque;

/// A flit stored in a VC buffer, stamped with its arrival cycle so a flit
/// never traverses more than one hop per cycle.
#[derive(Debug, Clone, Copy)]
pub struct BufferedFlit {
    /// The flit itself.
    pub flit: Flit,
    /// Cycle at which the flit was written into this buffer.
    pub arrived_at: u64,
}

/// One virtual channel: a FIFO flit buffer plus the per-packet routing state
/// of the packet currently holding the channel.
#[derive(Debug, Clone)]
pub struct VirtualChannel {
    buffer: VecDeque<BufferedFlit>,
    capacity: usize,
    /// Output direction decided when the head flit reached the front.
    pub route_out: Option<Direction>,
    /// Downstream VC index allocated for the current packet.
    pub downstream_vc: Option<usize>,
    /// Whether an in-flight packet currently owns this channel.
    pub allocated: bool,
}

impl VirtualChannel {
    /// Creates an empty VC with the given buffer capacity (in flits).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "VC buffer capacity must be non-zero");
        VirtualChannel {
            buffer: VecDeque::with_capacity(capacity),
            capacity,
            route_out: None,
            downstream_vc: None,
            allocated: false,
        }
    }

    /// Number of flits currently buffered.
    pub fn occupancy(&self) -> usize {
        self.buffer.len()
    }

    /// Buffer capacity in flits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the buffer holds no flits.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Whether the buffer has no free slot (no credit available upstream).
    pub fn is_full(&self) -> bool {
        self.buffer.len() >= self.capacity
    }

    /// Whether this VC is considered *occupied* for the VCO feature: it is
    /// occupied while a packet owns it or flits are buffered.
    pub fn is_occupied(&self) -> bool {
        self.allocated || !self.buffer.is_empty()
    }

    /// Pushes a flit into the buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full — callers must check credits first; a
    /// violation indicates a flow-control bug.
    pub fn push(&mut self, flit: Flit, cycle: u64) {
        assert!(
            !self.is_full(),
            "credit violation: pushing into a full VC buffer"
        );
        self.buffer.push_back(BufferedFlit {
            flit,
            arrived_at: cycle,
        });
    }

    /// The head-of-line flit, if any.
    pub fn front(&self) -> Option<&BufferedFlit> {
        self.buffer.front()
    }

    /// Removes and returns the head-of-line flit.
    pub fn pop(&mut self) -> Option<BufferedFlit> {
        self.buffer.pop_front()
    }

    /// Releases the per-packet state after the tail flit has left.
    pub fn release(&mut self) {
        self.route_out = None;
        self.downstream_vc = None;
        self.allocated = false;
    }
}

/// A router input port: a set of virtual channels plus the port's cumulative
/// buffer-operation counter.
#[derive(Debug, Clone)]
pub struct InputPort {
    direction: Direction,
    vcs: Vec<VirtualChannel>,
    /// Cumulative buffer reads + writes since the last [`InputPort::reset_boc`].
    boc: u64,
}

impl InputPort {
    /// Creates an input port with `vc_count` virtual channels of
    /// `buffer_depth` flits each.
    ///
    /// # Panics
    ///
    /// Panics if `vc_count` or `buffer_depth` is zero.
    pub fn new(direction: Direction, vc_count: usize, buffer_depth: usize) -> Self {
        assert!(vc_count > 0, "an input port needs at least one VC");
        InputPort {
            direction,
            vcs: (0..vc_count)
                .map(|_| VirtualChannel::new(buffer_depth))
                .collect(),
            boc: 0,
        }
    }

    /// The direction this port faces.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Number of virtual channels.
    pub fn vc_count(&self) -> usize {
        self.vcs.len()
    }

    /// Immutable access to a VC.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn vc(&self, idx: usize) -> &VirtualChannel {
        &self.vcs[idx]
    }

    /// Mutable access to a VC.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn vc_mut(&mut self, idx: usize) -> &mut VirtualChannel {
        &mut self.vcs[idx]
    }

    /// Iterates over the VCs.
    pub fn vcs(&self) -> impl Iterator<Item = &VirtualChannel> {
        self.vcs.iter()
    }

    /// Virtual Channel Occupancy: fraction of VCs currently occupied,
    /// in `[0, 1]`. This is the instantaneous feature DL2Fence samples for
    /// detection.
    pub fn vco(&self) -> f32 {
        let occupied = self.vcs.iter().filter(|v| v.is_occupied()).count();
        occupied as f32 / self.vcs.len() as f32
    }

    /// Total flits buffered across all VCs of this port.
    pub fn buffered_flits(&self) -> usize {
        self.vcs.iter().map(|v| v.occupancy()).sum()
    }

    /// Finds a free VC (not currently allocated to a packet), if any.
    pub fn free_vc(&self) -> Option<usize> {
        self.vcs.iter().position(|v| !v.allocated && v.is_empty())
    }

    /// Finds a free VC with index `start` or higher. The network restricts
    /// wraparound (dateline) hops on torus/ring topologies to the upper VC
    /// class this way, breaking the cyclic channel dependency a ring would
    /// otherwise create. `free_vc_from(0)` is exactly [`InputPort::free_vc`].
    pub fn free_vc_from(&self, start: usize) -> Option<usize> {
        self.vcs
            .iter()
            .enumerate()
            .skip(start)
            .find(|(_, v)| !v.allocated && v.is_empty())
            .map(|(i, _)| i)
    }

    /// The cumulative Buffer Operation Count (reads + writes) since the last
    /// reset. This is the accumulated feature DL2Fence samples for
    /// localization.
    pub fn boc(&self) -> u64 {
        self.boc
    }

    /// Records `n` buffer operations.
    pub fn record_buffer_ops(&mut self, n: u64) {
        self.boc += n;
    }

    /// Resets the BOC counter (called after each sampling window).
    pub fn reset_boc(&mut self) {
        self.boc = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, PacketId, TrafficClass};
    use crate::topology::NodeId;

    fn flit(seq: usize) -> Flit {
        Flit {
            packet: PacketId(1),
            kind: FlitKind::Body,
            sequence: seq,
            src: NodeId(0),
            dst: NodeId(1),
            created_at: 0,
            injected_at: 0,
            class: TrafficClass::Benign,
        }
    }

    #[test]
    fn vc_fifo_order_preserved() {
        let mut vc = VirtualChannel::new(4);
        vc.push(flit(0), 0);
        vc.push(flit(1), 0);
        vc.push(flit(2), 1);
        assert_eq!(vc.pop().unwrap().flit.sequence, 0);
        assert_eq!(vc.pop().unwrap().flit.sequence, 1);
        assert_eq!(vc.pop().unwrap().flit.sequence, 2);
        assert!(vc.pop().is_none());
    }

    #[test]
    fn vc_full_and_empty_flags() {
        let mut vc = VirtualChannel::new(2);
        assert!(vc.is_empty());
        assert!(!vc.is_full());
        vc.push(flit(0), 0);
        vc.push(flit(1), 0);
        assert!(vc.is_full());
        assert!(!vc.is_empty());
    }

    #[test]
    #[should_panic(expected = "credit violation")]
    fn overfilling_vc_panics() {
        let mut vc = VirtualChannel::new(1);
        vc.push(flit(0), 0);
        vc.push(flit(1), 0);
    }

    #[test]
    fn occupied_tracks_allocation_and_buffer() {
        let mut vc = VirtualChannel::new(2);
        assert!(!vc.is_occupied());
        vc.allocated = true;
        assert!(vc.is_occupied());
        vc.release();
        assert!(!vc.is_occupied());
        vc.push(flit(0), 0);
        assert!(vc.is_occupied());
    }

    #[test]
    fn port_vco_reflects_occupied_fraction() {
        let mut port = InputPort::new(Direction::East, 4, 2);
        assert_eq!(port.vco(), 0.0);
        port.vc_mut(0).allocated = true;
        port.vc_mut(1).push(flit(0), 0);
        assert!((port.vco() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn port_free_vc_skips_allocated() {
        let mut port = InputPort::new(Direction::North, 2, 2);
        port.vc_mut(0).allocated = true;
        assert_eq!(port.free_vc(), Some(1));
        port.vc_mut(1).allocated = true;
        assert_eq!(port.free_vc(), None);
    }

    #[test]
    fn free_vc_from_respects_lower_bound() {
        let port = InputPort::new(Direction::North, 4, 2);
        assert_eq!(port.free_vc_from(0), port.free_vc());
        assert_eq!(port.free_vc_from(2), Some(2));
        assert_eq!(port.free_vc_from(4), None);
        let mut port = InputPort::new(Direction::North, 4, 2);
        port.vc_mut(2).allocated = true;
        assert_eq!(port.free_vc_from(2), Some(3));
    }

    #[test]
    fn boc_accumulates_and_resets() {
        let mut port = InputPort::new(Direction::West, 2, 2);
        port.record_buffer_ops(3);
        port.record_buffer_ops(2);
        assert_eq!(port.boc(), 5);
        port.reset_boc();
        assert_eq!(port.boc(), 0);
    }

    #[test]
    fn buffered_flits_counts_across_vcs() {
        let mut port = InputPort::new(Direction::South, 2, 4);
        port.vc_mut(0).push(flit(0), 0);
        port.vc_mut(1).push(flit(1), 0);
        port.vc_mut(1).push(flit(2), 0);
        assert_eq!(port.buffered_flits(), 3);
    }
}
