//! Simulator configuration.

use crate::topology::{Topology, TopologyKind};
use serde::{Deserialize, Serialize};

/// Configuration of a NoC simulation.
///
/// The defaults mirror the paper's Garnet setup: a single virtual network
/// with a small number of VCs per input port, 5-flit packets and single-cycle
/// links.
///
/// # Examples
///
/// ```
/// use noc_sim::NocConfig;
///
/// let cfg = NocConfig::mesh(16, 16).with_vcs(4).with_buffer_depth(4);
/// assert_eq!(cfg.node_count(), 256);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Frame rows.
    pub rows: usize,
    /// Frame columns.
    pub cols: usize,
    /// Topology family the `rows × cols` nodes are wired into.
    #[serde(default)]
    pub topology: TopologyKind,
    /// Virtual channels per input port.
    pub vcs_per_port: usize,
    /// Buffer depth (flits) of each virtual channel.
    pub buffer_depth: usize,
    /// Flits per packet (head + body + tail).
    pub flits_per_packet: usize,
    /// Maximum packets waiting in a node's injection queue before the node is
    /// considered saturated (used for crash detection in the FIR sweep).
    pub injection_queue_capacity: usize,
}

impl NocConfig {
    /// Creates a configuration for a `rows × cols` mesh with default router
    /// parameters (4 VCs, depth-4 buffers, 5-flit packets).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn mesh(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be non-zero");
        NocConfig {
            rows,
            cols,
            topology: TopologyKind::Mesh,
            vcs_per_port: 4,
            buffer_depth: 4,
            flits_per_packet: 5,
            injection_queue_capacity: 1024,
        }
    }

    /// Creates a configuration for a `rows × cols` torus with default router
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2 (see [`Topology::torus`]).
    pub fn torus(rows: usize, cols: usize) -> Self {
        let _ = Topology::torus(rows, cols);
        NocConfig {
            topology: TopologyKind::Torus,
            ..NocConfig::mesh(rows, cols)
        }
    }

    /// Creates a configuration for a ring over `rows × cols` nodes with
    /// default router parameters.
    ///
    /// # Panics
    ///
    /// Panics if the ring would have fewer than 2 nodes (see
    /// [`Topology::ring`]).
    pub fn ring(rows: usize, cols: usize) -> Self {
        let _ = Topology::ring(rows, cols);
        NocConfig {
            topology: TopologyKind::Ring,
            ..NocConfig::mesh(rows, cols)
        }
    }

    /// Creates a configuration for an explicit topology instance.
    pub fn for_topology(topology: &Topology) -> Self {
        match topology.kind() {
            TopologyKind::Mesh => NocConfig::mesh(topology.rows(), topology.cols()),
            TopologyKind::Torus => NocConfig::torus(topology.rows(), topology.cols()),
            TopologyKind::Ring => NocConfig::ring(topology.rows(), topology.cols()),
        }
    }

    /// Sets the number of virtual channels per input port.
    ///
    /// # Panics
    ///
    /// Panics if `vcs` is zero.
    pub fn with_vcs(mut self, vcs: usize) -> Self {
        assert!(vcs > 0, "at least one virtual channel is required");
        self.vcs_per_port = vcs;
        self
    }

    /// Sets the per-VC buffer depth in flits.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_buffer_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "buffer depth must be non-zero");
        self.buffer_depth = depth;
        self
    }

    /// Sets the number of flits per packet.
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero.
    pub fn with_flits_per_packet(mut self, flits: usize) -> Self {
        assert!(flits > 0, "packets must contain at least one flit");
        self.flits_per_packet = flits;
        self
    }

    /// Sets the injection queue capacity used for saturation/crash detection.
    pub fn with_injection_queue_capacity(mut self, capacity: usize) -> Self {
        self.injection_queue_capacity = capacity;
        self
    }

    /// Number of nodes in the topology.
    pub fn node_count(&self) -> usize {
        self.rows * self.cols
    }

    /// The topology descriptor this configuration describes.
    pub fn topology(&self) -> Topology {
        match self.topology {
            TopologyKind::Mesh => Topology::mesh(self.rows, self.cols),
            TopologyKind::Torus => Topology::torus(self.rows, self.cols),
            TopologyKind::Ring => Topology::ring(self.rows, self.cols),
        }
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig::mesh(8, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_8x8() {
        let cfg = NocConfig::default();
        assert_eq!(cfg.rows, 8);
        assert_eq!(cfg.cols, 8);
        assert_eq!(cfg.node_count(), 64);
    }

    #[test]
    fn builder_methods_apply() {
        let cfg = NocConfig::mesh(16, 16)
            .with_vcs(2)
            .with_buffer_depth(8)
            .with_flits_per_packet(3)
            .with_injection_queue_capacity(64);
        assert_eq!(cfg.vcs_per_port, 2);
        assert_eq!(cfg.buffer_depth, 8);
        assert_eq!(cfg.flits_per_packet, 3);
        assert_eq!(cfg.injection_queue_capacity, 64);
    }

    #[test]
    fn topology_ctors_set_kind() {
        assert_eq!(NocConfig::mesh(4, 4).topology(), Topology::mesh(4, 4));
        assert_eq!(NocConfig::torus(4, 4).topology(), Topology::torus(4, 4));
        assert_eq!(NocConfig::ring(4, 4).topology(), Topology::ring(4, 4));
        let t = Topology::torus(2, 8);
        assert_eq!(NocConfig::for_topology(&t).topology(), t);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_rows_panics() {
        NocConfig::mesh(0, 4);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn degenerate_torus_panics() {
        NocConfig::torus(1, 4);
    }

    #[test]
    #[should_panic(expected = "virtual channel")]
    fn zero_vcs_panics() {
        NocConfig::mesh(2, 2).with_vcs(0);
    }
}
