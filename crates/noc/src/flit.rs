//! Packets and flits.

use crate::topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A globally unique packet identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit: carries routing information and allocates VCs.
    Head,
    /// Middle flit.
    Body,
    /// Last flit: releases the VC and completes the packet.
    Tail,
    /// Single-flit packet (acts as head and tail simultaneously).
    HeadTail,
}

impl FlitKind {
    /// Whether this flit performs head duties (route computation, VC
    /// allocation).
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Whether this flit performs tail duties (VC release, packet
    /// completion).
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// Whether a packet belongs to benign traffic or to a flooding attacker.
///
/// The class never influences routing or arbitration (the attack is
/// protocol-legal); it exists purely so experiments can label ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Normal workload traffic.
    #[default]
    Benign,
    /// Flooding DoS traffic injected by a malicious node.
    Malicious,
}

/// A packet to be injected into the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Cycle at which the packet was created (entered the injection queue).
    pub created_at: u64,
    /// Benign or malicious.
    pub class: TrafficClass,
    /// Number of flits the packet serializes into.
    pub length_flits: usize,
}

/// A single flow-control unit traversing the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// The packet this flit belongs to.
    pub packet: PacketId,
    /// Head/body/tail marker.
    pub kind: FlitKind,
    /// Sequence number of the flit within its packet (0 = head).
    pub sequence: usize,
    /// Source node of the packet.
    pub src: NodeId,
    /// Destination node of the packet.
    pub dst: NodeId,
    /// Cycle at which the packet was created.
    pub created_at: u64,
    /// Cycle at which this flit left the injection queue and entered the
    /// router fabric (set at injection).
    pub injected_at: u64,
    /// Traffic class inherited from the packet.
    pub class: TrafficClass,
}

impl Packet {
    /// Serializes the packet into its flits.
    ///
    /// A single-flit packet yields one [`FlitKind::HeadTail`] flit; longer
    /// packets yield `Head`, `Body`*, `Tail`.
    pub fn to_flits(&self) -> Vec<Flit> {
        let n = self.length_flits.max(1);
        (0..n)
            .map(|i| {
                let kind = if n == 1 {
                    FlitKind::HeadTail
                } else if i == 0 {
                    FlitKind::Head
                } else if i == n - 1 {
                    FlitKind::Tail
                } else {
                    FlitKind::Body
                };
                Flit {
                    packet: self.id,
                    kind,
                    sequence: i,
                    src: self.src,
                    dst: self.dst,
                    created_at: self.created_at,
                    injected_at: 0,
                    class: self.class,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(len: usize) -> Packet {
        Packet {
            id: PacketId(1),
            src: NodeId(0),
            dst: NodeId(5),
            created_at: 10,
            class: TrafficClass::Benign,
            length_flits: len,
        }
    }

    #[test]
    fn multi_flit_packet_structure() {
        let flits = packet(5).to_flits();
        assert_eq!(flits.len(), 5);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[4].kind, FlitKind::Tail);
        assert!(flits[1..4].iter().all(|f| f.kind == FlitKind::Body));
        assert!(flits.iter().enumerate().all(|(i, f)| f.sequence == i));
    }

    #[test]
    fn single_flit_packet_is_head_tail() {
        let flits = packet(1).to_flits();
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
        assert!(flits[0].kind.is_head());
        assert!(flits[0].kind.is_tail());
    }

    #[test]
    fn zero_length_packet_still_yields_one_flit() {
        let flits = packet(0).to_flits();
        assert_eq!(flits.len(), 1);
    }

    #[test]
    fn head_and_tail_predicates() {
        assert!(FlitKind::Head.is_head());
        assert!(!FlitKind::Head.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(!FlitKind::Body.is_head());
        assert!(!FlitKind::Body.is_tail());
    }

    #[test]
    fn flits_inherit_packet_metadata() {
        let p = Packet {
            class: TrafficClass::Malicious,
            ..packet(3)
        };
        for f in p.to_flits() {
            assert_eq!(f.src, p.src);
            assert_eq!(f.dst, p.dst);
            assert_eq!(f.created_at, p.created_at);
            assert_eq!(f.class, TrafficClass::Malicious);
        }
    }
}
