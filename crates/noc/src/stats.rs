//! Latency and throughput statistics.

use serde::{Deserialize, Serialize};

/// Streaming summary statistics (count / mean / min / max) of a latency
/// distribution, measured in cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
}

impl LatencyStats {
    /// Creates an empty statistic.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// The arithmetic mean, or 0.0 if no samples were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another statistic into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Aggregate counters and latency distributions of a simulation run.
///
/// The latency breakdown mirrors the four curves of the paper's Figure 1:
/// packet queue latency, packet latency, flit queue latency and flit latency.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Packets that entered an injection queue.
    pub packets_created: u64,
    /// Packets whose head flit entered the router fabric.
    pub packets_injected: u64,
    /// Packets fully delivered (tail flit ejected).
    pub packets_received: u64,
    /// Flits injected into the fabric.
    pub flits_injected: u64,
    /// Flits ejected at their destination.
    pub flits_received: u64,
    /// Packets dropped because a source injection queue was full.
    pub packets_dropped: u64,
    /// Malicious (flooding) packets delivered.
    pub malicious_packets_received: u64,
    /// Time spent by packets waiting in the injection queue
    /// (creation → head-flit injection).
    pub packet_queue_latency: LatencyStats,
    /// End-to-end packet latency (creation → tail-flit ejection).
    pub packet_latency: LatencyStats,
    /// Network-only packet latency (head injection → tail ejection).
    pub packet_network_latency: LatencyStats,
    /// Per-flit queueing latency (creation → injection).
    pub flit_queue_latency: LatencyStats,
    /// Per-flit end-to-end latency (creation → ejection).
    pub flit_latency: LatencyStats,
    /// Packets delivered to each node, indexed by node id.
    pub received_per_node: Vec<u64>,
    /// Total buffer read/write operations across every router input port
    /// (never reset, unlike the per-port BOC sampling counters).
    pub buffer_operations: u64,
    /// Total flit link traversals (router-to-router hops).
    pub link_traversals: u64,
}

impl NetworkStats {
    /// Creates an empty statistics block for a `node_count`-node network.
    pub fn new(node_count: usize) -> Self {
        NetworkStats {
            received_per_node: vec![0; node_count],
            ..Default::default()
        }
    }

    /// Average injection throughput in packets per node per cycle.
    pub fn offered_load(&self) -> f64 {
        if self.cycles == 0 || self.received_per_node.is_empty() {
            return 0.0;
        }
        self.packets_created as f64 / (self.cycles as f64 * self.received_per_node.len() as f64)
    }

    /// Average delivered throughput in packets per node per cycle.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 || self.received_per_node.is_empty() {
            return 0.0;
        }
        self.packets_received as f64 / (self.cycles as f64 * self.received_per_node.len() as f64)
    }

    /// Fraction of created packets that were delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.packets_created == 0 {
            return 1.0;
        }
        self.packets_received as f64 / self.packets_created as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_track_min_max_mean() {
        let mut s = LatencyStats::new();
        s.record(10);
        s.record(20);
        s.record(30);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
        assert!((s.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_latency_stats_mean_is_zero() {
        assert_eq!(LatencyStats::new().mean(), 0.0);
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = LatencyStats::new();
        a.record(5);
        let mut b = LatencyStats::new();
        b.record(15);
        b.record(25);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.min, 5);
        assert_eq!(a.max, 25);
        let empty = LatencyStats::new();
        a.merge(&empty);
        assert_eq!(a.count, 3);
    }

    #[test]
    fn merge_into_empty_copies() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        b.record(7);
        a.merge(&b);
        assert_eq!(a, b);
    }

    #[test]
    fn throughput_and_delivery_ratio() {
        let mut s = NetworkStats::new(4);
        s.cycles = 100;
        s.packets_created = 40;
        s.packets_received = 20;
        assert!((s.throughput() - 0.05).abs() < 1e-12);
        assert!((s.offered_load() - 0.1).abs() < 1e-12);
        assert!((s.delivery_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_stats_are_safe() {
        let s = NetworkStats::new(4);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.offered_load(), 0.0);
        assert_eq!(s.delivery_ratio(), 1.0);
    }
}
