//! The cycle-level network simulation engine.

use crate::config::NocConfig;
use crate::flit::{Flit, Packet, PacketId, TrafficClass};
use crate::router::Router;
use crate::stats::NetworkStats;
use crate::topology::{Direction, NodeId, Topology};
use std::collections::{HashMap, VecDeque};

/// A packet currently being serialized into its source router's local port.
#[derive(Debug, Clone)]
struct PendingInjection {
    flits: VecDeque<Flit>,
    vc: usize,
}

/// A fully simulated NoC (mesh, torus or ring — see [`Topology`]).
///
/// The engine advances in discrete cycles. Each [`Network::step`]:
///
/// 1. **Injection** — every node's network interface pushes flits of the
///    packet at the head of its injection queue into a free virtual channel
///    of the router's local input port (one flit per cycle per node).
/// 2. **Switch traversal** — every router moves at most one flit per input
///    port and one flit per output port, subject to the topology's minimal
///    routing, virtual channel allocation at the downstream router and
///    credit availability (a free downstream buffer slot). Flits never
///    advance more than one hop per cycle. On wraparound topologies, hops
///    across a wrap (dateline) link only allocate from the upper half of
///    the downstream VCs, breaking the cyclic channel dependency the ring
///    would otherwise create; mesh links are unrestricted, so mesh
///    behaviour is unchanged.
/// 3. **Ejection** — flits whose route terminates here are consumed and
///    accounted in [`NetworkStats`].
///
/// # Examples
///
/// ```
/// use noc_sim::{Network, NocConfig, NodeId};
///
/// let mut net = Network::new(NocConfig::mesh(4, 4));
/// net.enqueue_packet(NodeId(0), NodeId(15), 0);
/// net.run(300);
/// assert_eq!(net.stats().packets_received, 1);
/// assert!(net.stats().packet_latency.mean() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    config: NocConfig,
    topology: Topology,
    routers: Vec<Router>,
    injection_queues: Vec<VecDeque<Packet>>,
    pending: Vec<Option<PendingInjection>>,
    head_injection_cycle: HashMap<PacketId, u64>,
    stats: NetworkStats,
    cycle: u64,
    next_packet_id: u64,
}

impl Network {
    /// Builds a network from a configuration.
    pub fn new(config: NocConfig) -> Self {
        let topology = config.topology();
        let routers = topology
            .nodes()
            .map(|id| Router::new(id, &config, &topology))
            .collect();
        let n = config.node_count();
        Network {
            topology,
            routers,
            injection_queues: vec![VecDeque::new(); n],
            pending: vec![None; n],
            head_injection_cycle: HashMap::new(),
            stats: NetworkStats::new(n),
            cycle: 0,
            next_packet_id: 0,
            config,
        }
    }

    /// The simulation configuration.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// The network's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// The router of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the topology.
    pub fn router(&self, id: NodeId) -> &Router {
        &self.routers[id.0]
    }

    /// Iterates over all routers in node-id order.
    pub fn routers(&self) -> impl Iterator<Item = &Router> {
        self.routers.iter()
    }

    /// Number of packets waiting in the injection queue of node `id`
    /// (including the packet currently being serialized).
    pub fn injection_queue_len(&self, id: NodeId) -> usize {
        self.injection_queues[id.0].len() + usize::from(self.pending[id.0].is_some())
    }

    /// Whether any node's injection queue has reached the configured
    /// capacity — the saturation condition used to declare the "system
    /// crashed" point of the FIR sweep (Figure 1).
    pub fn is_saturated(&self) -> bool {
        self.injection_queues
            .iter()
            .any(|q| q.len() >= self.config.injection_queue_capacity)
    }

    /// Enqueues a benign packet for injection at `src`, destined to `dst`.
    /// Returns the new packet's id.
    ///
    /// # Panics
    ///
    /// Panics if either node is outside the topology.
    pub fn enqueue_packet(&mut self, src: NodeId, dst: NodeId, created_at: u64) -> PacketId {
        self.enqueue_with_class(src, dst, created_at, TrafficClass::Benign)
    }

    /// Enqueues a packet with an explicit traffic class (used by the
    /// flooding DoS model to label ground truth).
    ///
    /// # Panics
    ///
    /// Panics if either node is outside the topology.
    pub fn enqueue_with_class(
        &mut self,
        src: NodeId,
        dst: NodeId,
        created_at: u64,
        class: TrafficClass,
    ) -> PacketId {
        assert!(self.topology.contains(src), "source {src} outside topology");
        assert!(
            self.topology.contains(dst),
            "destination {dst} outside topology"
        );
        self.enqueue_with_length(src, dst, created_at, class, self.config.flits_per_packet)
    }

    /// Enqueues a packet with an explicit flit count, overriding the
    /// configured packet length. This models the payload-extension flavour
    /// of flooding attacks (longer packets occupy buffers and links for more
    /// cycles per packet).
    ///
    /// # Panics
    ///
    /// Panics if either node is outside the topology or `length_flits` is zero.
    pub fn enqueue_with_length(
        &mut self,
        src: NodeId,
        dst: NodeId,
        created_at: u64,
        class: TrafficClass,
        length_flits: usize,
    ) -> PacketId {
        assert!(self.topology.contains(src), "source {src} outside topology");
        assert!(
            self.topology.contains(dst),
            "destination {dst} outside topology"
        );
        assert!(length_flits > 0, "packets must contain at least one flit");
        let id = PacketId(self.next_packet_id);
        self.next_packet_id += 1;
        let packet = Packet {
            id,
            src,
            dst,
            created_at,
            class,
            length_flits,
        };
        self.injection_queues[src.0].push_back(packet);
        self.stats.packets_created += 1;
        id
    }

    /// Like [`Network::enqueue_with_class`] but refuses the packet (returning
    /// `false`) when the source injection queue is at capacity.
    pub fn try_enqueue_with_class(
        &mut self,
        src: NodeId,
        dst: NodeId,
        created_at: u64,
        class: TrafficClass,
    ) -> bool {
        if self.injection_queues[src.0].len() >= self.config.injection_queue_capacity {
            self.stats.packets_dropped += 1;
            return false;
        }
        self.enqueue_with_class(src, dst, created_at, class);
        true
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        self.inject_phase();
        self.traversal_phase();
    }

    /// Advances the simulation by `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Resets the BOC counters of every router (end of a sampling window).
    pub fn reset_boc(&mut self) {
        for r in &mut self.routers {
            r.reset_boc();
        }
    }

    // ------------------------------------------------------------------
    // Injection
    // ------------------------------------------------------------------

    fn inject_phase(&mut self) {
        for node in 0..self.config.node_count() {
            // Start serializing a new packet if the NI is idle.
            if self.pending[node].is_none() {
                if let Some(packet) = self.injection_queues[node].pop_front() {
                    let port = self.routers[node]
                        .input_port_mut(Direction::Local)
                        .expect("every router has a local port");
                    if let Some(vc) = port.free_vc() {
                        port.vc_mut(vc).allocated = true;
                        let mut flits: VecDeque<Flit> = packet.to_flits().into();
                        for f in &mut flits {
                            f.injected_at = self.cycle;
                        }
                        self.stats.packets_injected += 1;
                        self.stats
                            .packet_queue_latency
                            .record(self.cycle.saturating_sub(packet.created_at));
                        self.head_injection_cycle.insert(packet.id, self.cycle);
                        self.pending[node] = Some(PendingInjection { flits, vc });
                    } else {
                        // No free VC at the local port: put the packet back.
                        self.injection_queues[node].push_front(packet);
                    }
                }
            }
            // Push one flit of the in-progress packet (link bandwidth: one
            // flit per cycle from the NI into the router).
            let mut finished = false;
            if let Some(pending) = self.pending[node].as_mut() {
                let port = self.routers[node]
                    .input_port_mut(Direction::Local)
                    .expect("every router has a local port");
                let vc = port.vc_mut(pending.vc);
                if !vc.is_full() {
                    if let Some(mut flit) = pending.flits.pop_front() {
                        flit.injected_at = self.cycle;
                        self.stats.flits_injected += 1;
                        self.stats
                            .flit_queue_latency
                            .record(self.cycle.saturating_sub(flit.created_at));
                        vc.push(flit, self.cycle);
                        port.record_buffer_ops(1);
                        self.stats.buffer_operations += 1;
                    }
                    finished = self.pending[node]
                        .as_ref()
                        .map(|p| p.flits.is_empty())
                        .unwrap_or(false);
                }
            }
            if finished {
                self.pending[node] = None;
            }
        }
    }

    // ------------------------------------------------------------------
    // Switch traversal and ejection
    // ------------------------------------------------------------------

    fn traversal_phase(&mut self) {
        let node_count = self.config.node_count();
        let vcs = self.config.vcs_per_port;
        // Per-router, per-direction "output already used this cycle" flags.
        let mut output_used = vec![[false; 5]; node_count];

        for node in 0..node_count {
            // Rotate port and VC priority with the cycle for fairness.
            let port_offset = (self.cycle as usize) % 5;
            for p in 0..5 {
                let dir = Direction::from_index((p + port_offset) % 5);
                if self.routers[node].input_port(dir).is_none() {
                    continue;
                }
                let vc_offset = (self.cycle as usize) % vcs;
                // One flit per input port per cycle.
                let mut port_sent = false;
                for v in 0..vcs {
                    if port_sent {
                        break;
                    }
                    let vc_idx = (v + vc_offset) % vcs;
                    port_sent = self.try_advance(node, dir, vc_idx, &mut output_used);
                }
            }
        }
    }

    /// Attempts to advance the head-of-line flit of one VC by one hop.
    /// Returns `true` if a flit moved (or was ejected).
    fn try_advance(
        &mut self,
        node: usize,
        dir: Direction,
        vc_idx: usize,
        output_used: &mut [[bool; 5]],
    ) -> bool {
        let cycle = self.cycle;

        // Inspect the head-of-line flit.
        let (flit, needs_route) = {
            let port = match self.routers[node].input_port(dir) {
                Some(p) => p,
                None => return false,
            };
            let vc = port.vc(vc_idx);
            match vc.front() {
                Some(b) if b.arrived_at < cycle => (b.flit, vc.route_out.is_none()),
                _ => return false,
            }
        };

        // Route computation for head flits.
        let out_dir = if needs_route {
            let d = self.topology.next_hop(NodeId(node), flit.dst);
            let port = self.routers[node].input_port_mut(dir).unwrap();
            port.vc_mut(vc_idx).route_out = Some(d);
            d
        } else {
            self.routers[node]
                .input_port(dir)
                .unwrap()
                .vc(vc_idx)
                .route_out
                .unwrap()
        };

        // Output port contention: one flit per output per cycle.
        if output_used[node][out_dir.index()] {
            return false;
        }

        if out_dir == Direction::Local {
            // Ejection.
            let port = self.routers[node].input_port_mut(dir).unwrap();
            let buffered = port.vc_mut(vc_idx).pop().expect("front checked above");
            port.record_buffer_ops(1);
            self.stats.buffer_operations += 1;
            if buffered.flit.kind.is_tail() {
                port.vc_mut(vc_idx).release();
            }
            output_used[node][out_dir.index()] = true;
            self.account_ejection(buffered.flit);
            return true;
        }

        // Downstream router and input direction.
        let downstream = match self.topology.neighbor(NodeId(node), out_dir) {
            Some(d) => d.0,
            None => unreachable!("minimal routing never points off the topology"),
        };
        let down_dir = out_dir.opposite();
        // Dateline VC restriction: hops over a wraparound link may only
        // allocate the upper half of the downstream VCs. Mesh links never
        // wrap, so `min_vc` is 0 there and allocation is unchanged.
        let vcs = self.config.vcs_per_port;
        let min_vc = if vcs >= 2 && self.topology.is_wrap_link(NodeId(node), out_dir) {
            vcs / 2
        } else {
            0
        };

        // Virtual-channel allocation at the downstream input port.
        let assigned_vc = {
            let vc_state = self.routers[node].input_port(dir).unwrap().vc(vc_idx);
            vc_state.downstream_vc
        };
        let down_vc = match assigned_vc {
            Some(v) => v,
            None => {
                if !flit.kind.is_head() {
                    // Body/tail flits must follow the head's allocation; if it
                    // is missing the packet's VC was released prematurely.
                    return false;
                }
                let down_port = self.routers[downstream]
                    .input_port(down_dir)
                    .expect("downstream router must have an input port facing the upstream router");
                match down_port.free_vc_from(min_vc) {
                    Some(v) => {
                        // Reserve it immediately so no other router grabs it
                        // during this cycle.
                        self.routers[downstream]
                            .input_port_mut(down_dir)
                            .unwrap()
                            .vc_mut(v)
                            .allocated = true;
                        self.routers[node]
                            .input_port_mut(dir)
                            .unwrap()
                            .vc_mut(vc_idx)
                            .downstream_vc = Some(v);
                        v
                    }
                    None => return false,
                }
            }
        };

        // Credit check: downstream buffer must have a free slot.
        if self.routers[downstream]
            .input_port(down_dir)
            .unwrap()
            .vc(down_vc)
            .is_full()
        {
            return false;
        }

        // Move the flit.
        let buffered = {
            let port = self.routers[node].input_port_mut(dir).unwrap();
            let b = port.vc_mut(vc_idx).pop().expect("front checked above");
            port.record_buffer_ops(1);
            if b.flit.kind.is_tail() {
                port.vc_mut(vc_idx).release();
            }
            b
        };
        {
            let port = self.routers[downstream].input_port_mut(down_dir).unwrap();
            port.vc_mut(down_vc).push(buffered.flit, cycle);
            port.record_buffer_ops(1);
        }
        self.stats.buffer_operations += 2;
        self.stats.link_traversals += 1;
        output_used[node][out_dir.index()] = true;
        true
    }

    fn account_ejection(&mut self, flit: Flit) {
        self.stats.flits_received += 1;
        self.stats
            .flit_latency
            .record(self.cycle.saturating_sub(flit.created_at));
        if flit.kind.is_tail() {
            self.stats.packets_received += 1;
            self.stats.received_per_node[flit.dst.0] += 1;
            self.stats
                .packet_latency
                .record(self.cycle.saturating_sub(flit.created_at));
            if let Some(head_cycle) = self.head_injection_cycle.remove(&flit.packet) {
                self.stats
                    .packet_network_latency
                    .record(self.cycle.saturating_sub(head_cycle));
            }
            if flit.class == TrafficClass::Malicious {
                self.stats.malicious_packets_received += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_packet_is_delivered() {
        let mut net = Network::new(NocConfig::mesh(4, 4));
        net.enqueue_packet(NodeId(0), NodeId(15), 0);
        net.run(200);
        assert_eq!(net.stats().packets_created, 1);
        assert_eq!(net.stats().packets_received, 1);
        assert_eq!(
            net.stats().flits_received,
            net.config().flits_per_packet as u64
        );
        assert_eq!(net.stats().received_per_node[15], 1);
    }

    #[test]
    fn packet_to_self_is_delivered() {
        let mut net = Network::new(NocConfig::mesh(2, 2));
        net.enqueue_packet(NodeId(3), NodeId(3), 0);
        net.run(50);
        assert_eq!(net.stats().packets_received, 1);
    }

    #[test]
    fn latency_grows_with_distance() {
        let mut near = Network::new(NocConfig::mesh(8, 8));
        near.enqueue_packet(NodeId(0), NodeId(1), 0);
        near.run(200);
        let mut far = Network::new(NocConfig::mesh(8, 8));
        far.enqueue_packet(NodeId(0), NodeId(63), 0);
        far.run(200);
        assert!(
            far.stats().packet_latency.mean() > near.stats().packet_latency.mean(),
            "far {} should exceed near {}",
            far.stats().packet_latency.mean(),
            near.stats().packet_latency.mean()
        );
    }

    #[test]
    fn all_packets_delivered_under_light_load() {
        let mut net = Network::new(NocConfig::mesh(4, 4));
        // One packet from every node to the opposite node, staggered.
        for n in 0..16 {
            net.enqueue_packet(NodeId(n), NodeId(15 - n), 0);
        }
        net.run(500);
        assert_eq!(net.stats().packets_received, 16);
        assert_eq!(net.stats().packets_created, 16);
    }

    #[test]
    fn flit_conservation_no_loss_no_duplication() {
        let mut net = Network::new(NocConfig::mesh(4, 4));
        for n in 0..16 {
            net.enqueue_packet(NodeId(n), NodeId((n * 7 + 3) % 16), 0);
        }
        net.run(1000);
        let s = net.stats();
        assert_eq!(s.flits_injected, s.flits_received);
        assert_eq!(s.packets_injected, s.packets_received);
        // Nothing left in any router buffer.
        let leftover: usize = net.routers().map(|r| r.buffered_flits()).sum();
        assert_eq!(leftover, 0);
    }

    #[test]
    fn hotspot_congestion_raises_vco_on_path() {
        // Flood node 0 from node 3 (same row, westward traffic) on a 4x4 mesh
        // and check that East input ports along the row become occupied.
        let mut net = Network::new(NocConfig::mesh(4, 4));
        for c in 0..400u64 {
            net.enqueue_packet(NodeId(3), NodeId(0), c);
            net.step();
        }
        let vco_on_path = net.router(NodeId(1)).vco(Direction::East).unwrap();
        let vco_off_path = net.router(NodeId(13)).vco(Direction::East).unwrap();
        assert!(
            vco_on_path > vco_off_path,
            "on-path VCO {vco_on_path} should exceed off-path {vco_off_path}"
        );
        let boc_on_path = net.router(NodeId(1)).boc(Direction::East).unwrap();
        let boc_off_path = net.router(NodeId(13)).boc(Direction::East).unwrap();
        assert!(boc_on_path > boc_off_path);
    }

    #[test]
    fn boc_reset_clears_counters() {
        let mut net = Network::new(NocConfig::mesh(4, 4));
        for c in 0..100u64 {
            net.enqueue_packet(NodeId(3), NodeId(0), c);
            net.step();
        }
        assert!(net.router(NodeId(1)).boc(Direction::East).unwrap() > 0);
        net.reset_boc();
        assert_eq!(net.router(NodeId(1)).boc(Direction::East).unwrap(), 0);
    }

    #[test]
    fn saturation_detected_when_queue_grows() {
        let cfg = NocConfig::mesh(2, 2).with_injection_queue_capacity(8);
        let mut net = Network::new(cfg);
        // Enqueue far more packets than the network can drain.
        for c in 0..64u64 {
            net.enqueue_packet(NodeId(0), NodeId(3), c);
        }
        assert!(net.is_saturated());
        net.run(2000);
        assert!(!net.is_saturated(), "queues should eventually drain");
    }

    #[test]
    fn try_enqueue_respects_capacity() {
        let cfg = NocConfig::mesh(2, 2).with_injection_queue_capacity(2);
        let mut net = Network::new(cfg);
        assert!(net.try_enqueue_with_class(NodeId(0), NodeId(3), 0, TrafficClass::Benign));
        assert!(net.try_enqueue_with_class(NodeId(0), NodeId(3), 0, TrafficClass::Benign));
        assert!(!net.try_enqueue_with_class(NodeId(0), NodeId(3), 0, TrafficClass::Benign));
        assert_eq!(net.stats().packets_dropped, 1);
    }

    #[test]
    fn malicious_packets_are_counted_separately() {
        let mut net = Network::new(NocConfig::mesh(4, 4));
        net.enqueue_with_class(NodeId(0), NodeId(5), 0, TrafficClass::Malicious);
        net.enqueue_packet(NodeId(2), NodeId(6), 0);
        net.run(300);
        assert_eq!(net.stats().packets_received, 2);
        assert_eq!(net.stats().malicious_packets_received, 1);
    }

    #[test]
    fn queue_latency_reflects_waiting_time() {
        let mut net = Network::new(NocConfig::mesh(4, 4));
        // Many packets from the same node must serialize through one NI.
        for _ in 0..10 {
            net.enqueue_packet(NodeId(0), NodeId(3), 0);
        }
        net.run(500);
        let s = net.stats();
        assert_eq!(s.packets_received, 10);
        assert!(s.packet_queue_latency.max > s.packet_queue_latency.min);
        assert!(s.packet_latency.mean() >= s.packet_network_latency.mean());
    }

    #[test]
    fn torus_wrap_route_is_shorter_than_mesh() {
        // 0 -> 3 on a 4x4 torus is one wrap hop; all flits must arrive.
        let mut net = Network::new(NocConfig::torus(4, 4));
        net.enqueue_packet(NodeId(0), NodeId(3), 0);
        net.run(100);
        assert_eq!(net.stats().packets_received, 1);
        // The wrap link delivered it: only one link traversal per flit.
        assert_eq!(
            net.stats().link_traversals,
            net.config().flits_per_packet as u64
        );
    }

    #[test]
    fn torus_all_to_opposite_delivers_everything() {
        let mut net = Network::new(NocConfig::torus(4, 4));
        for n in 0..16 {
            net.enqueue_packet(NodeId(n), NodeId(15 - n), 0);
        }
        net.run(1000);
        assert_eq!(net.stats().packets_received, 16);
        let leftover: usize = net.routers().map(|r| r.buffered_flits()).sum();
        assert_eq!(leftover, 0);
    }

    #[test]
    fn ring_delivers_both_ways_around() {
        let mut net = Network::new(NocConfig::ring(4, 4));
        net.enqueue_packet(NodeId(0), NodeId(2), 0); // forward
        net.enqueue_packet(NodeId(0), NodeId(14), 0); // backward over the wrap
        net.run(300);
        assert_eq!(net.stats().packets_received, 2);
    }

    #[test]
    fn torus_sustained_cross_traffic_drains() {
        // Saturating wrap links from several sources exercises the dateline
        // VC restriction; everything must still drain (no deadlock).
        let mut net = Network::new(NocConfig::torus(4, 4));
        for c in 0..200u64 {
            net.enqueue_packet(NodeId(0), NodeId(3), c);
            net.enqueue_packet(NodeId(3), NodeId(0), c);
            net.enqueue_packet(NodeId(12), NodeId(15), c);
            net.step();
        }
        net.run(4000);
        let s = net.stats();
        assert_eq!(s.packets_injected, s.packets_received);
        let leftover: usize = net.routers().map(|r| r.buffered_flits()).sum();
        assert_eq!(leftover, 0);
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn enqueue_outside_topology_panics() {
        let mut net = Network::new(NocConfig::mesh(2, 2));
        net.enqueue_packet(NodeId(9), NodeId(0), 0);
    }
}
