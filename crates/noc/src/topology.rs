//! Mesh topology primitives: node identifiers, coordinates and directions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node (tile/router) identifier: `id = y * cols + x`.
///
/// This is the numbering the paper's Table-Like Method assumes: the East
/// neighbour of node `n` is `n + 1`, the North neighbour is `n + cols`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

/// A mesh coordinate. `x` grows towards the East, `y` grows towards the
/// North.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Coord {
    /// Column (0 = westmost).
    pub x: usize,
    /// Row (0 = southmost).
    pub y: usize,
}

impl Coord {
    /// Creates a coordinate.
    pub fn new(x: usize, y: usize) -> Self {
        Coord { x, y }
    }

    /// Converts a node id into a coordinate on a mesh with `cols` columns.
    pub fn from_id(id: NodeId, cols: usize) -> Self {
        Coord {
            x: id.0 % cols,
            y: id.0 / cols,
        }
    }

    /// Converts the coordinate back into a node id on a mesh with `cols`
    /// columns.
    pub fn to_id(self, cols: usize) -> NodeId {
        NodeId(self.y * cols + self.x)
    }

    /// Manhattan (hop) distance to another coordinate.
    pub fn manhattan(self, other: Coord) -> usize {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A port direction on a mesh router.
///
/// `Local` is the network-interface port connecting the router to its tile.
/// The four cardinal directions name *where the neighbour is*: a flit that
/// arrives on the **East input port** was sent by the East neighbour
/// (`id + 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards/from the neighbour at `id + 1`.
    East,
    /// Towards/from the neighbour at `id + cols`.
    North,
    /// Towards/from the neighbour at `id - 1`.
    West,
    /// Towards/from the neighbour at `id - cols`.
    South,
    /// The local tile / network interface.
    Local,
}

impl Direction {
    /// The four cardinal directions in the paper's `E, N, W, S` order.
    pub const CARDINAL: [Direction; 4] = [
        Direction::East,
        Direction::North,
        Direction::West,
        Direction::South,
    ];

    /// All five port directions.
    pub const ALL: [Direction; 5] = [
        Direction::East,
        Direction::North,
        Direction::West,
        Direction::South,
        Direction::Local,
    ];

    /// The opposite cardinal direction. `Local` is its own opposite.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::Local => Direction::Local,
        }
    }

    /// A stable small index for array-indexed port storage
    /// (E=0, N=1, W=2, S=3, Local=4).
    pub fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::North => 1,
            Direction::West => 2,
            Direction::South => 3,
            Direction::Local => 4,
        }
    }

    /// The inverse of [`Direction::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx > 4`.
    pub fn from_index(idx: usize) -> Direction {
        Direction::ALL[idx]
    }

    /// Single-letter label used in frame names (`E`, `N`, `W`, `S`, `L`).
    pub fn letter(self) -> char {
        match self {
            Direction::East => 'E',
            Direction::North => 'N',
            Direction::West => 'W',
            Direction::South => 'S',
            Direction::Local => 'L',
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// A rectangular 2-D mesh topology helper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Mesh {
    /// Creates a mesh topology descriptor.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be non-zero");
        Mesh { rows, cols }
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Returns `true` if `id` is a valid node of this mesh.
    pub fn contains(&self, id: NodeId) -> bool {
        id.0 < self.node_count()
    }

    /// The coordinate of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn coord(&self, id: NodeId) -> Coord {
        assert!(
            self.contains(id),
            "node {id} outside {}x{} mesh",
            self.rows,
            self.cols
        );
        Coord::from_id(id, self.cols)
    }

    /// The neighbour of `id` in direction `dir`, or `None` at a mesh edge
    /// (or for `Local`).
    pub fn neighbor(&self, id: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(id);
        let n = match dir {
            Direction::East => {
                if c.x + 1 < self.cols {
                    Coord::new(c.x + 1, c.y)
                } else {
                    return None;
                }
            }
            Direction::West => {
                if c.x > 0 {
                    Coord::new(c.x - 1, c.y)
                } else {
                    return None;
                }
            }
            Direction::North => {
                if c.y + 1 < self.rows {
                    Coord::new(c.x, c.y + 1)
                } else {
                    return None;
                }
            }
            Direction::South => {
                if c.y > 0 {
                    Coord::new(c.x, c.y - 1)
                } else {
                    return None;
                }
            }
            Direction::Local => return None,
        };
        Some(n.to_id(self.cols))
    }

    /// Whether the router at `id` has an input port from direction `dir`
    /// (i.e. a neighbour exists on that side).
    pub fn has_input_port(&self, id: NodeId, dir: Direction) -> bool {
        dir == Direction::Local || self.neighbor(id, dir).is_some()
    }

    /// Iterates over all node ids in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count()).map(NodeId)
    }
}

/// Error returned by the fallible [`Topology`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A node id that does not exist in the topology.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes the topology actually has.
        node_count: usize,
    },
    /// A topology name that [`Topology::parse`] could not understand.
    UnknownName(String),
    /// Dimensions that are invalid for the requested topology family
    /// (zero-sized, or wraparound over fewer than two nodes per dimension).
    InvalidDims {
        /// The topology family.
        kind: TopologyKind,
        /// Requested rows.
        rows: usize,
        /// Requested columns.
        cols: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NodeOutOfRange { node, node_count } => {
                write!(f, "{node} outside the {node_count}-node topology")
            }
            TopologyError::UnknownName(s) => {
                write!(
                    f,
                    "unknown topology {s:?} (expected e.g. \"mesh4\", \"torus4\", \"ring4\")"
                )
            }
            TopologyError::InvalidDims { kind, rows, cols } => {
                write!(
                    f,
                    "invalid dimensions {rows}x{cols} for a {} topology",
                    kind.name()
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The topology family of a NoC instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// 2-D mesh — edge routers lack the outward-facing ports.
    #[default]
    Mesh,
    /// 2-D torus — every row and column closes into a ring through
    /// wraparound links, so all routers have all five ports.
    Torus,
    /// Routerless-style bidirectional ring over the row-major node order —
    /// routers only have East/West/Local ports.
    Ring,
}

impl TopologyKind {
    /// The lowercase family name used in spec axes (`"mesh"`, `"torus"`,
    /// `"ring"`).
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Mesh => "mesh",
            TopologyKind::Torus => "torus",
            TopologyKind::Ring => "ring",
        }
    }
}

/// A NoC topology: node enumeration, coordinates, neighbour/port maps and
/// deadlock-free minimal routing, dispatched over the supported families.
///
/// This is the type threaded through the simulator, the traffic layer and
/// the monitor in place of the concrete [`Mesh`] struct. The mesh variant
/// delegates to [`Mesh`] and [`crate::routing::xy_next_hop`] unchanged, so
/// mesh behaviour is bit-identical to the original implementation.
///
/// Out-of-range nodes surface as `Option`/[`Result`] values; the panicking
/// forms are kept as documented `*_unchecked` internals.
///
/// # Examples
///
/// ```
/// use noc_sim::{Direction, NodeId, Topology};
///
/// let torus = Topology::parse("torus4").unwrap();
/// // Wraparound: the East neighbour of the east edge is the west edge.
/// assert_eq!(torus.neighbor(NodeId(3), Direction::East), Some(NodeId(0)));
/// // Minimal routing takes the wrap link when it is shorter.
/// assert_eq!(torus.route_path(NodeId(0), NodeId(3)).unwrap(),
///            vec![NodeId(0), NodeId(3)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// A rectangular 2-D mesh.
    Mesh(Mesh),
    /// A 2-D torus with wraparound links in both dimensions.
    Torus {
        /// Number of rows (must be ≥ 2 so wrap links are distinct).
        rows: usize,
        /// Number of columns (must be ≥ 2).
        cols: usize,
    },
    /// A bidirectional ring over the row-major node order. `rows`/`cols`
    /// are retained as the frame geometry the monitor samples into.
    Ring {
        /// Frame rows.
        rows: usize,
        /// Frame columns.
        cols: usize,
    },
}

impl Topology {
    /// Creates a mesh topology.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero (see [`Mesh::new`]).
    pub fn mesh(rows: usize, cols: usize) -> Self {
        Topology::Mesh(Mesh::new(rows, cols))
    }

    /// Creates a torus topology.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2 (wraparound links would
    /// degenerate into self-loops).
    pub fn torus(rows: usize, cols: usize) -> Self {
        assert!(
            rows >= 2 && cols >= 2,
            "torus dimensions must be at least 2x2, got {rows}x{cols}"
        );
        Topology::Torus { rows, cols }
    }

    /// Creates a ring topology over `rows * cols` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the ring would have fewer than two nodes.
    pub fn ring(rows: usize, cols: usize) -> Self {
        assert!(
            rows > 0 && cols > 0 && rows * cols >= 2,
            "ring needs at least 2 nodes, got {rows}x{cols}"
        );
        Topology::Ring { rows, cols }
    }

    /// Parses a spec-axis topology name: a family prefix followed by a
    /// square side (`"mesh4"`, `"torus8"`, `"ring4"`) or explicit
    /// `rows x cols` dims (`"mesh4x8"`).
    pub fn parse(name: &str) -> Result<Self, TopologyError> {
        let trimmed = name.trim();
        let kinds = [
            ("torus", TopologyKind::Torus),
            ("mesh", TopologyKind::Mesh),
            ("ring", TopologyKind::Ring),
        ];
        for (prefix, kind) in kinds {
            if let Some(rest) = trimmed.strip_prefix(prefix) {
                let (rows, cols) = match rest.split_once('x') {
                    Some((r, c)) => match (r.parse::<usize>(), c.parse::<usize>()) {
                        (Ok(r), Ok(c)) => (r, c),
                        _ => return Err(TopologyError::UnknownName(name.to_string())),
                    },
                    None => match rest.parse::<usize>() {
                        Ok(n) => (n, n),
                        Err(_) => return Err(TopologyError::UnknownName(name.to_string())),
                    },
                };
                let valid = match kind {
                    TopologyKind::Mesh => rows > 0 && cols > 0,
                    TopologyKind::Torus => rows >= 2 && cols >= 2,
                    TopologyKind::Ring => rows > 0 && cols > 0 && rows * cols >= 2,
                };
                if !valid {
                    return Err(TopologyError::InvalidDims { kind, rows, cols });
                }
                return Ok(match kind {
                    TopologyKind::Mesh => Topology::mesh(rows, cols),
                    TopologyKind::Torus => Topology::torus(rows, cols),
                    TopologyKind::Ring => Topology::ring(rows, cols),
                });
            }
        }
        Err(TopologyError::UnknownName(name.to_string()))
    }

    /// The spec-axis name of this topology (`"mesh4"`, `"torus4x8"`, ...).
    /// Round-trips through [`Topology::parse`].
    pub fn name(&self) -> String {
        let (rows, cols) = (self.rows(), self.cols());
        if rows == cols {
            format!("{}{rows}", self.kind().name())
        } else {
            format!("{}{rows}x{cols}", self.kind().name())
        }
    }

    /// The topology family.
    pub fn kind(&self) -> TopologyKind {
        match self {
            Topology::Mesh(_) => TopologyKind::Mesh,
            Topology::Torus { .. } => TopologyKind::Torus,
            Topology::Ring { .. } => TopologyKind::Ring,
        }
    }

    /// Frame rows (the monitor's sampling geometry).
    pub fn rows(&self) -> usize {
        match self {
            Topology::Mesh(m) => m.rows,
            Topology::Torus { rows, .. } | Topology::Ring { rows, .. } => *rows,
        }
    }

    /// Frame columns.
    pub fn cols(&self) -> usize {
        match self {
            Topology::Mesh(m) => m.cols,
            Topology::Torus { cols, .. } | Topology::Ring { cols, .. } => *cols,
        }
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.rows() * self.cols()
    }

    /// Returns `true` if `id` is a valid node of this topology.
    pub fn contains(&self, id: NodeId) -> bool {
        id.0 < self.node_count()
    }

    /// The coordinate of a node, or `None` if the node is out of range.
    pub fn coord(&self, id: NodeId) -> Option<Coord> {
        if self.contains(id) {
            Some(Coord::from_id(id, self.cols()))
        } else {
            None
        }
    }

    /// The coordinate of a node.
    ///
    /// Internal panicking form of [`Topology::coord`] for hot paths that
    /// have already validated the node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn coord_unchecked(&self, id: NodeId) -> Coord {
        self.coord(id).unwrap_or_else(|| {
            panic!(
                "node {id} outside {}x{} {}",
                self.rows(),
                self.cols(),
                self.kind().name()
            )
        })
    }

    /// The neighbour of `id` in direction `dir`, or `None` when there is no
    /// link that way (mesh edge, non-ring direction, `Local`, or an
    /// out-of-range node).
    pub fn neighbor(&self, id: NodeId, dir: Direction) -> Option<NodeId> {
        if !self.contains(id) {
            return None;
        }
        match self {
            Topology::Mesh(m) => m.neighbor(id, dir),
            Topology::Torus { rows, cols } => {
                let c = Coord::from_id(id, *cols);
                let n = match dir {
                    Direction::East => Coord::new((c.x + 1) % cols, c.y),
                    Direction::West => Coord::new((c.x + cols - 1) % cols, c.y),
                    Direction::North => Coord::new(c.x, (c.y + 1) % rows),
                    Direction::South => Coord::new(c.x, (c.y + rows - 1) % rows),
                    Direction::Local => return None,
                };
                Some(n.to_id(*cols))
            }
            Topology::Ring { .. } => {
                let n = self.node_count();
                match dir {
                    Direction::East => Some(NodeId((id.0 + 1) % n)),
                    Direction::West => Some(NodeId((id.0 + n - 1) % n)),
                    _ => None,
                }
            }
        }
    }

    /// Whether the router at `id` has an input port from direction `dir`.
    pub fn has_input_port(&self, id: NodeId, dir: Direction) -> bool {
        dir == Direction::Local || self.neighbor(id, dir).is_some()
    }

    /// Whether stepping from `id` in direction `dir` traverses a wraparound
    /// link. Always `false` on a mesh. Wrap hops are the dateline the
    /// simulator's VC allocation keys on to break cyclic channel
    /// dependencies.
    pub fn is_wrap_link(&self, id: NodeId, dir: Direction) -> bool {
        if !self.contains(id) {
            return false;
        }
        match self {
            Topology::Mesh(_) => false,
            Topology::Torus { rows, cols } => {
                let c = Coord::from_id(id, *cols);
                match dir {
                    Direction::East => c.x + 1 == *cols,
                    Direction::West => c.x == 0,
                    Direction::North => c.y + 1 == *rows,
                    Direction::South => c.y == 0,
                    Direction::Local => false,
                }
            }
            Topology::Ring { .. } => {
                let n = self.node_count();
                match dir {
                    Direction::East => id.0 + 1 == n,
                    Direction::West => id.0 == 0,
                    _ => false,
                }
            }
        }
    }

    /// The output direction a router at `current` chooses for a flit
    /// destined to `dst` under this topology's deterministic minimal
    /// routing. Returns [`Direction::Local`] when `current == dst`.
    ///
    /// * Mesh: XY dimension-order routing — exactly
    ///   [`crate::routing::xy_next_hop`].
    /// * Torus: dimension-order routing that picks the shorter way around
    ///   each ring (ties break East/North).
    /// * Ring: the shorter way around the ring (ties break East).
    pub fn next_hop(&self, current: NodeId, dst: NodeId) -> Direction {
        match self {
            Topology::Mesh(m) => crate::routing::xy_next_hop(current, dst, m.cols),
            Topology::Torus { rows, cols } => {
                let c = Coord::from_id(current, *cols);
                let d = Coord::from_id(dst, *cols);
                if c.x != d.x {
                    let east = (d.x + cols - c.x) % cols;
                    let west = (c.x + cols - d.x) % cols;
                    if east <= west {
                        Direction::East
                    } else {
                        Direction::West
                    }
                } else if c.y != d.y {
                    let north = (d.y + rows - c.y) % rows;
                    let south = (c.y + rows - d.y) % rows;
                    if north <= south {
                        Direction::North
                    } else {
                        Direction::South
                    }
                } else {
                    Direction::Local
                }
            }
            Topology::Ring { .. } => {
                let n = self.node_count();
                let fwd = (dst.0 + n - current.0) % n;
                let back = (current.0 + n - dst.0) % n;
                if fwd == 0 {
                    Direction::Local
                } else if fwd <= back {
                    Direction::East
                } else {
                    Direction::West
                }
            }
        }
    }

    /// The minimal hop distance between two nodes, or `None` if either is
    /// out of range.
    pub fn min_distance(&self, a: NodeId, b: NodeId) -> Option<usize> {
        let ca = self.coord(a)?;
        let cb = self.coord(b)?;
        Some(match self {
            Topology::Mesh(_) => ca.manhattan(cb),
            Topology::Torus { rows, cols } => {
                let dx = ca.x.abs_diff(cb.x);
                let dy = ca.y.abs_diff(cb.y);
                dx.min(cols - dx) + dy.min(rows - dy)
            }
            Topology::Ring { .. } => {
                let n = self.node_count();
                let d = a.0.abs_diff(b.0);
                d.min(n - d)
            }
        })
    }

    /// The full minimal route from `src` to `dst` (inclusive of both
    /// endpoints) under [`Topology::next_hop`], or an error when either
    /// endpoint is out of range.
    ///
    /// On the mesh variant this is exactly [`crate::routing::route_path`] —
    /// the set of nodes the paper calls *routing-path victims* when `src`
    /// is an attacker and `dst` the target victim.
    pub fn route_path(&self, src: NodeId, dst: NodeId) -> Result<Vec<NodeId>, TopologyError> {
        for node in [src, dst] {
            if !self.contains(node) {
                return Err(TopologyError::NodeOutOfRange {
                    node,
                    node_count: self.node_count(),
                });
            }
        }
        let mut path = vec![src];
        let mut current = src;
        while current != dst {
            let dir = self.next_hop(current, dst);
            current = self
                .neighbor(current, dir)
                .expect("minimal routing never points off the topology");
            path.push(current);
        }
        Ok(path)
    }

    /// Internal panicking form of [`Topology::route_path`] for callers that
    /// have already validated both endpoints.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn route_path_unchecked(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        self.route_path(src, dst)
            .unwrap_or_else(|e| panic!("route_path_unchecked: {e}"))
    }

    /// Iterates over all node ids in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count()).map(NodeId)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_coord_round_trip() {
        let mesh = Mesh::new(4, 4);
        for id in mesh.nodes() {
            assert_eq!(mesh.coord(id).to_id(4), id);
        }
    }

    #[test]
    fn neighbor_arithmetic_matches_paper_convention() {
        let mesh = Mesh::new(16, 16);
        // Interior node: East = +1, West = -1, North = +16, South = -16.
        let id = NodeId(100);
        assert_eq!(mesh.neighbor(id, Direction::East), Some(NodeId(101)));
        assert_eq!(mesh.neighbor(id, Direction::West), Some(NodeId(99)));
        assert_eq!(mesh.neighbor(id, Direction::North), Some(NodeId(116)));
        assert_eq!(mesh.neighbor(id, Direction::South), Some(NodeId(84)));
    }

    #[test]
    fn corner_nodes_have_two_neighbors() {
        let mesh = Mesh::new(4, 4);
        let corners = [NodeId(0), NodeId(3), NodeId(12), NodeId(15)];
        for c in corners {
            let n = Direction::CARDINAL
                .iter()
                .filter(|&&d| mesh.neighbor(c, d).is_some())
                .count();
            assert_eq!(n, 2, "corner {c} should have exactly 2 neighbours");
        }
    }

    #[test]
    fn edge_nodes_have_three_neighbors() {
        let mesh = Mesh::new(4, 4);
        let edges = [NodeId(1), NodeId(2), NodeId(4), NodeId(7), NodeId(13)];
        for e in edges {
            let n = Direction::CARDINAL
                .iter()
                .filter(|&&d| mesh.neighbor(e, d).is_some())
                .count();
            assert_eq!(n, 3, "edge {e} should have exactly 3 neighbours");
        }
    }

    #[test]
    fn interior_nodes_have_four_neighbors() {
        let mesh = Mesh::new(4, 4);
        for id in [NodeId(5), NodeId(6), NodeId(9), NodeId(10)] {
            let n = Direction::CARDINAL
                .iter()
                .filter(|&&d| mesh.neighbor(id, d).is_some())
                .count();
            assert_eq!(n, 4);
        }
    }

    #[test]
    fn opposite_directions() {
        assert_eq!(Direction::East.opposite(), Direction::West);
        assert_eq!(Direction::North.opposite(), Direction::South);
        assert_eq!(Direction::Local.opposite(), Direction::Local);
        for d in Direction::CARDINAL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn direction_index_round_trip() {
        for d in Direction::ALL {
            assert_eq!(Direction::from_index(d.index()), d);
        }
    }

    #[test]
    fn manhattan_distance() {
        let a = Coord::new(0, 0);
        let b = Coord::new(3, 2);
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(b.manhattan(a), 5);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn has_input_port_respects_edges() {
        let mesh = Mesh::new(4, 4);
        // Node 0 is the SW corner: no West, no South inputs.
        assert!(!mesh.has_input_port(NodeId(0), Direction::West));
        assert!(!mesh.has_input_port(NodeId(0), Direction::South));
        assert!(mesh.has_input_port(NodeId(0), Direction::East));
        assert!(mesh.has_input_port(NodeId(0), Direction::North));
        assert!(mesh.has_input_port(NodeId(0), Direction::Local));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn coord_of_invalid_node_panics() {
        Mesh::new(2, 2).coord(NodeId(4));
    }

    #[test]
    fn topology_parse_round_trips() {
        for name in ["mesh4", "mesh8", "torus4", "ring4", "mesh4x8", "torus2x16"] {
            let t = Topology::parse(name).unwrap();
            assert_eq!(t.name(), name, "parse/name round trip for {name}");
            assert_eq!(Topology::parse(&t.name()).unwrap(), t);
        }
    }

    #[test]
    fn topology_parse_rejects_garbage() {
        for name in [
            "",
            "mesh",
            "mesh0",
            "torus1",
            "ring1x1",
            "hypercube4",
            "mesh4x",
            "4mesh",
        ] {
            assert!(Topology::parse(name).is_err(), "{name:?} should not parse");
        }
    }

    #[test]
    fn mesh_variant_matches_mesh_struct() {
        let mesh = Mesh::new(4, 4);
        let topo = Topology::mesh(4, 4);
        for id in mesh.nodes() {
            assert_eq!(topo.coord(id), Some(mesh.coord(id)));
            for dir in Direction::ALL {
                assert_eq!(topo.neighbor(id, dir), mesh.neighbor(id, dir));
                assert_eq!(topo.has_input_port(id, dir), mesh.has_input_port(id, dir));
                assert!(!topo.is_wrap_link(id, dir));
            }
        }
    }

    #[test]
    fn torus_wraps_all_four_edges() {
        let t = Topology::torus(4, 4);
        // SW corner: West wraps to the east edge, South wraps to the north.
        assert_eq!(t.neighbor(NodeId(0), Direction::West), Some(NodeId(3)));
        assert_eq!(t.neighbor(NodeId(0), Direction::South), Some(NodeId(12)));
        assert_eq!(t.neighbor(NodeId(3), Direction::East), Some(NodeId(0)));
        assert_eq!(t.neighbor(NodeId(15), Direction::North), Some(NodeId(3)));
        // Every torus router has all five ports.
        for id in t.nodes() {
            for dir in Direction::ALL {
                assert!(t.has_input_port(id, dir));
            }
        }
    }

    #[test]
    fn torus_wrap_links_only_at_edges() {
        let t = Topology::torus(4, 4);
        assert!(t.is_wrap_link(NodeId(0), Direction::West));
        assert!(t.is_wrap_link(NodeId(0), Direction::South));
        assert!(!t.is_wrap_link(NodeId(0), Direction::East));
        assert!(t.is_wrap_link(NodeId(3), Direction::East));
        assert!(!t.is_wrap_link(NodeId(5), Direction::East));
        assert!(!t.is_wrap_link(NodeId(5), Direction::West));
    }

    #[test]
    fn ring_has_only_east_west_ports() {
        let r = Topology::ring(4, 4);
        for id in r.nodes() {
            assert!(r.has_input_port(id, Direction::East));
            assert!(r.has_input_port(id, Direction::West));
            assert!(r.has_input_port(id, Direction::Local));
            assert!(!r.has_input_port(id, Direction::North));
            assert!(!r.has_input_port(id, Direction::South));
        }
        assert_eq!(r.neighbor(NodeId(15), Direction::East), Some(NodeId(0)));
        assert_eq!(r.neighbor(NodeId(0), Direction::West), Some(NodeId(15)));
        assert!(r.is_wrap_link(NodeId(15), Direction::East));
        assert!(r.is_wrap_link(NodeId(0), Direction::West));
        assert!(!r.is_wrap_link(NodeId(7), Direction::East));
    }

    #[test]
    fn torus_takes_shorter_wrap() {
        let t = Topology::torus(4, 4);
        // 0 -> 3 is 3 hops east but 1 hop west around the wrap.
        assert_eq!(t.next_hop(NodeId(0), NodeId(3)), Direction::West);
        assert_eq!(
            t.route_path(NodeId(0), NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(3)]
        );
        assert_eq!(t.min_distance(NodeId(0), NodeId(3)), Some(1));
        // Opposite corners: 2 hops on the torus vs 6 on the mesh.
        assert_eq!(t.min_distance(NodeId(0), NodeId(15)), Some(2));
        // Equidistant ties break East then North.
        assert_eq!(t.next_hop(NodeId(0), NodeId(2)), Direction::East);
        assert_eq!(t.next_hop(NodeId(0), NodeId(8)), Direction::North);
    }

    #[test]
    fn out_of_range_nodes_are_errors_not_panics() {
        let t = Topology::mesh(2, 2);
        assert_eq!(t.coord(NodeId(4)), None);
        assert_eq!(t.neighbor(NodeId(4), Direction::East), None);
        assert_eq!(t.min_distance(NodeId(0), NodeId(4)), None);
        assert!(matches!(
            t.route_path(NodeId(0), NodeId(4)),
            Err(TopologyError::NodeOutOfRange {
                node: NodeId(4),
                node_count: 4
            })
        ));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn coord_unchecked_panics_out_of_range() {
        Topology::mesh(2, 2).coord_unchecked(NodeId(4));
    }

    #[test]
    #[should_panic(expected = "route_path_unchecked")]
    fn route_path_unchecked_panics_out_of_range() {
        Topology::ring(2, 2).route_path_unchecked(NodeId(0), NodeId(9));
    }

    mod routing_invariants {
        use super::*;
        use proptest::prelude::*;

        fn assert_valid_minimal_route(topo: &Topology, src: NodeId, dst: NodeId) {
            let path = topo.route_path(src, dst).unwrap();
            assert_eq!(*path.first().unwrap(), src);
            assert_eq!(*path.last().unwrap(), dst);
            // Every consecutive pair is joined by a real link.
            for w in path.windows(2) {
                let adjacent = Direction::CARDINAL
                    .into_iter()
                    .any(|d| topo.neighbor(w[0], d) == Some(w[1]));
                assert!(adjacent, "{} -> {} is not a link of {}", w[0], w[1], topo);
            }
            // The route respects the minimal (wraparound-aware) distance.
            assert_eq!(path.len(), topo.min_distance(src, dst).unwrap() + 1);
        }

        proptest! {
            #[test]
            fn torus_routes_are_valid_adjacent_and_minimal(
                src in 0usize..64, dst in 0usize..64
            ) {
                let t = Topology::torus(8, 8);
                assert_valid_minimal_route(&t, NodeId(src), NodeId(dst));
            }

            #[test]
            fn ring_routes_are_valid_adjacent_and_minimal(
                src in 0usize..16, dst in 0usize..16
            ) {
                let r = Topology::ring(4, 4);
                assert_valid_minimal_route(&r, NodeId(src), NodeId(dst));
            }

            #[test]
            fn rectangular_torus_routes_hold(
                src in 0usize..32, dst in 0usize..32
            ) {
                let t = Topology::torus(4, 8);
                assert_valid_minimal_route(&t, NodeId(src), NodeId(dst));
            }

            #[test]
            fn mesh_paths_bit_identical_to_seed(
                src in 0usize..64, dst in 0usize..64
            ) {
                let mesh = Mesh::new(8, 8);
                let topo = Topology::mesh(8, 8);
                let seed_path = crate::routing::route_path(NodeId(src), NodeId(dst), &mesh);
                let topo_path = topo.route_path(NodeId(src), NodeId(dst)).unwrap();
                prop_assert_eq!(seed_path, topo_path);
                prop_assert_eq!(
                    crate::routing::xy_next_hop(NodeId(src), NodeId(dst), 8),
                    topo.next_hop(NodeId(src), NodeId(dst))
                );
            }
        }
    }
}
