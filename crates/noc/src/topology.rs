//! Mesh topology primitives: node identifiers, coordinates and directions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node (tile/router) identifier: `id = y * cols + x`.
///
/// This is the numbering the paper's Table-Like Method assumes: the East
/// neighbour of node `n` is `n + 1`, the North neighbour is `n + cols`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

/// A mesh coordinate. `x` grows towards the East, `y` grows towards the
/// North.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Coord {
    /// Column (0 = westmost).
    pub x: usize,
    /// Row (0 = southmost).
    pub y: usize,
}

impl Coord {
    /// Creates a coordinate.
    pub fn new(x: usize, y: usize) -> Self {
        Coord { x, y }
    }

    /// Converts a node id into a coordinate on a mesh with `cols` columns.
    pub fn from_id(id: NodeId, cols: usize) -> Self {
        Coord {
            x: id.0 % cols,
            y: id.0 / cols,
        }
    }

    /// Converts the coordinate back into a node id on a mesh with `cols`
    /// columns.
    pub fn to_id(self, cols: usize) -> NodeId {
        NodeId(self.y * cols + self.x)
    }

    /// Manhattan (hop) distance to another coordinate.
    pub fn manhattan(self, other: Coord) -> usize {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A port direction on a mesh router.
///
/// `Local` is the network-interface port connecting the router to its tile.
/// The four cardinal directions name *where the neighbour is*: a flit that
/// arrives on the **East input port** was sent by the East neighbour
/// (`id + 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards/from the neighbour at `id + 1`.
    East,
    /// Towards/from the neighbour at `id + cols`.
    North,
    /// Towards/from the neighbour at `id - 1`.
    West,
    /// Towards/from the neighbour at `id - cols`.
    South,
    /// The local tile / network interface.
    Local,
}

impl Direction {
    /// The four cardinal directions in the paper's `E, N, W, S` order.
    pub const CARDINAL: [Direction; 4] = [
        Direction::East,
        Direction::North,
        Direction::West,
        Direction::South,
    ];

    /// All five port directions.
    pub const ALL: [Direction; 5] = [
        Direction::East,
        Direction::North,
        Direction::West,
        Direction::South,
        Direction::Local,
    ];

    /// The opposite cardinal direction. `Local` is its own opposite.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::Local => Direction::Local,
        }
    }

    /// A stable small index for array-indexed port storage
    /// (E=0, N=1, W=2, S=3, Local=4).
    pub fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::North => 1,
            Direction::West => 2,
            Direction::South => 3,
            Direction::Local => 4,
        }
    }

    /// The inverse of [`Direction::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx > 4`.
    pub fn from_index(idx: usize) -> Direction {
        Direction::ALL[idx]
    }

    /// Single-letter label used in frame names (`E`, `N`, `W`, `S`, `L`).
    pub fn letter(self) -> char {
        match self {
            Direction::East => 'E',
            Direction::North => 'N',
            Direction::West => 'W',
            Direction::South => 'S',
            Direction::Local => 'L',
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// A rectangular 2-D mesh topology helper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Mesh {
    /// Creates a mesh topology descriptor.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be non-zero");
        Mesh { rows, cols }
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Returns `true` if `id` is a valid node of this mesh.
    pub fn contains(&self, id: NodeId) -> bool {
        id.0 < self.node_count()
    }

    /// The coordinate of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn coord(&self, id: NodeId) -> Coord {
        assert!(
            self.contains(id),
            "node {id} outside {}x{} mesh",
            self.rows,
            self.cols
        );
        Coord::from_id(id, self.cols)
    }

    /// The neighbour of `id` in direction `dir`, or `None` at a mesh edge
    /// (or for `Local`).
    pub fn neighbor(&self, id: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(id);
        let n = match dir {
            Direction::East => {
                if c.x + 1 < self.cols {
                    Coord::new(c.x + 1, c.y)
                } else {
                    return None;
                }
            }
            Direction::West => {
                if c.x > 0 {
                    Coord::new(c.x - 1, c.y)
                } else {
                    return None;
                }
            }
            Direction::North => {
                if c.y + 1 < self.rows {
                    Coord::new(c.x, c.y + 1)
                } else {
                    return None;
                }
            }
            Direction::South => {
                if c.y > 0 {
                    Coord::new(c.x, c.y - 1)
                } else {
                    return None;
                }
            }
            Direction::Local => return None,
        };
        Some(n.to_id(self.cols))
    }

    /// Whether the router at `id` has an input port from direction `dir`
    /// (i.e. a neighbour exists on that side).
    pub fn has_input_port(&self, id: NodeId, dir: Direction) -> bool {
        dir == Direction::Local || self.neighbor(id, dir).is_some()
    }

    /// Iterates over all node ids in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count()).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_coord_round_trip() {
        let mesh = Mesh::new(4, 4);
        for id in mesh.nodes() {
            assert_eq!(mesh.coord(id).to_id(4), id);
        }
    }

    #[test]
    fn neighbor_arithmetic_matches_paper_convention() {
        let mesh = Mesh::new(16, 16);
        // Interior node: East = +1, West = -1, North = +16, South = -16.
        let id = NodeId(100);
        assert_eq!(mesh.neighbor(id, Direction::East), Some(NodeId(101)));
        assert_eq!(mesh.neighbor(id, Direction::West), Some(NodeId(99)));
        assert_eq!(mesh.neighbor(id, Direction::North), Some(NodeId(116)));
        assert_eq!(mesh.neighbor(id, Direction::South), Some(NodeId(84)));
    }

    #[test]
    fn corner_nodes_have_two_neighbors() {
        let mesh = Mesh::new(4, 4);
        let corners = [NodeId(0), NodeId(3), NodeId(12), NodeId(15)];
        for c in corners {
            let n = Direction::CARDINAL
                .iter()
                .filter(|&&d| mesh.neighbor(c, d).is_some())
                .count();
            assert_eq!(n, 2, "corner {c} should have exactly 2 neighbours");
        }
    }

    #[test]
    fn edge_nodes_have_three_neighbors() {
        let mesh = Mesh::new(4, 4);
        let edges = [NodeId(1), NodeId(2), NodeId(4), NodeId(7), NodeId(13)];
        for e in edges {
            let n = Direction::CARDINAL
                .iter()
                .filter(|&&d| mesh.neighbor(e, d).is_some())
                .count();
            assert_eq!(n, 3, "edge {e} should have exactly 3 neighbours");
        }
    }

    #[test]
    fn interior_nodes_have_four_neighbors() {
        let mesh = Mesh::new(4, 4);
        for id in [NodeId(5), NodeId(6), NodeId(9), NodeId(10)] {
            let n = Direction::CARDINAL
                .iter()
                .filter(|&&d| mesh.neighbor(id, d).is_some())
                .count();
            assert_eq!(n, 4);
        }
    }

    #[test]
    fn opposite_directions() {
        assert_eq!(Direction::East.opposite(), Direction::West);
        assert_eq!(Direction::North.opposite(), Direction::South);
        assert_eq!(Direction::Local.opposite(), Direction::Local);
        for d in Direction::CARDINAL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn direction_index_round_trip() {
        for d in Direction::ALL {
            assert_eq!(Direction::from_index(d.index()), d);
        }
    }

    #[test]
    fn manhattan_distance() {
        let a = Coord::new(0, 0);
        let b = Coord::new(3, 2);
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(b.manhattan(a), 5);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn has_input_port_respects_edges() {
        let mesh = Mesh::new(4, 4);
        // Node 0 is the SW corner: no West, no South inputs.
        assert!(!mesh.has_input_port(NodeId(0), Direction::West));
        assert!(!mesh.has_input_port(NodeId(0), Direction::South));
        assert!(mesh.has_input_port(NodeId(0), Direction::East));
        assert!(mesh.has_input_port(NodeId(0), Direction::North));
        assert!(mesh.has_input_port(NodeId(0), Direction::Local));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn coord_of_invalid_node_panics() {
        Mesh::new(2, 2).coord(NodeId(4));
    }
}
