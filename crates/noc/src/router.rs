//! The router model.

use crate::config::NocConfig;
use crate::topology::{Direction, NodeId, Topology};
use crate::vc::InputPort;

/// A single router with up to five input ports (E, N, W, S, Local).
///
/// Routers only instantiate the ports their topology gives them a link for:
/// mesh edge and corner routers omit the outward-facing ports, exactly as
/// the paper notes ("routers on the edges lack external NoC input ports"),
/// which is why DL2Fence's directional feature frames are `R × (R−1)`
/// matrices rather than `R × R`. Torus routers have all five ports; ring
/// routers only East, West and Local.
#[derive(Debug, Clone)]
pub struct Router {
    id: NodeId,
    ports: [Option<InputPort>; 5],
}

impl Router {
    /// Builds the router for node `id` of `topology`, instantiating only
    /// the input ports that have a neighbour (plus the local port).
    pub fn new(id: NodeId, config: &NocConfig, topology: &Topology) -> Self {
        let mut ports: [Option<InputPort>; 5] = [None, None, None, None, None];
        for dir in Direction::ALL {
            if topology.has_input_port(id, dir) {
                ports[dir.index()] = Some(InputPort::new(
                    dir,
                    config.vcs_per_port,
                    config.buffer_depth,
                ));
            }
        }
        Router { id, ports }
    }

    /// The node this router belongs to.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The input port facing `dir`, if the router has one.
    pub fn input_port(&self, dir: Direction) -> Option<&InputPort> {
        self.ports[dir.index()].as_ref()
    }

    /// Mutable access to the input port facing `dir`.
    pub fn input_port_mut(&mut self, dir: Direction) -> Option<&mut InputPort> {
        self.ports[dir.index()].as_mut()
    }

    /// Iterates over the directions of the ports this router actually has.
    pub fn port_directions(&self) -> impl Iterator<Item = Direction> + '_ {
        Direction::ALL
            .into_iter()
            .filter(|d| self.ports[d.index()].is_some())
    }

    /// Instantaneous Virtual Channel Occupancy of the port facing `dir`, or
    /// `None` if the router has no such port.
    pub fn vco(&self, dir: Direction) -> Option<f32> {
        self.input_port(dir).map(|p| p.vco())
    }

    /// Cumulative Buffer Operation Count of the port facing `dir`, or `None`
    /// if the router has no such port.
    pub fn boc(&self, dir: Direction) -> Option<u64> {
        self.input_port(dir).map(|p| p.boc())
    }

    /// Resets the BOC counters of every port (end of a sampling window).
    pub fn reset_boc(&mut self) {
        for p in self.ports.iter_mut().flatten() {
            p.reset_boc();
        }
    }

    /// Total flits currently buffered in this router.
    pub fn buffered_flits(&self) -> usize {
        self.ports
            .iter()
            .flatten()
            .map(|p| p.buffered_flits())
            .sum()
    }

    /// Number of input ports this router has (2 for corners, 3 for edges, 4
    /// for interior routers — plus the local port).
    pub fn port_count(&self) -> usize {
        self.ports.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh4() -> (NocConfig, Topology) {
        let cfg = NocConfig::mesh(4, 4);
        let mesh = cfg.topology();
        (cfg, mesh)
    }

    #[test]
    fn corner_router_has_three_ports() {
        let (cfg, mesh) = mesh4();
        // Node 0: East + North + Local.
        let r = Router::new(NodeId(0), &cfg, &mesh);
        assert_eq!(r.port_count(), 3);
        assert!(r.input_port(Direction::East).is_some());
        assert!(r.input_port(Direction::North).is_some());
        assert!(r.input_port(Direction::Local).is_some());
        assert!(r.input_port(Direction::West).is_none());
        assert!(r.input_port(Direction::South).is_none());
    }

    #[test]
    fn interior_router_has_five_ports() {
        let (cfg, mesh) = mesh4();
        let r = Router::new(NodeId(5), &cfg, &mesh);
        assert_eq!(r.port_count(), 5);
    }

    #[test]
    fn torus_corner_router_has_five_ports() {
        let cfg = NocConfig::torus(4, 4);
        let topo = cfg.topology();
        let r = Router::new(NodeId(0), &cfg, &topo);
        assert_eq!(r.port_count(), 5);
    }

    #[test]
    fn ring_router_has_three_ports() {
        let cfg = NocConfig::ring(4, 4);
        let topo = cfg.topology();
        let r = Router::new(NodeId(7), &cfg, &topo);
        assert_eq!(r.port_count(), 3);
        assert!(r.input_port(Direction::East).is_some());
        assert!(r.input_port(Direction::West).is_some());
        assert!(r.input_port(Direction::North).is_none());
        assert!(r.input_port(Direction::South).is_none());
    }

    #[test]
    fn vco_of_missing_port_is_none() {
        let (cfg, mesh) = mesh4();
        let r = Router::new(NodeId(0), &cfg, &mesh);
        assert_eq!(r.vco(Direction::West), None);
        assert_eq!(r.vco(Direction::East), Some(0.0));
    }

    #[test]
    fn boc_reset_clears_all_ports() {
        let (cfg, mesh) = mesh4();
        let mut r = Router::new(NodeId(5), &cfg, &mesh);
        r.input_port_mut(Direction::East)
            .unwrap()
            .record_buffer_ops(10);
        r.input_port_mut(Direction::Local)
            .unwrap()
            .record_buffer_ops(2);
        assert_eq!(r.boc(Direction::East), Some(10));
        r.reset_boc();
        assert_eq!(r.boc(Direction::East), Some(0));
        assert_eq!(r.boc(Direction::Local), Some(0));
    }

    #[test]
    fn port_directions_lists_existing_ports_only() {
        let (cfg, mesh) = mesh4();
        let r = Router::new(NodeId(3), &cfg, &mesh); // SE corner: West, North, Local
        let dirs: Vec<Direction> = r.port_directions().collect();
        assert!(dirs.contains(&Direction::West));
        assert!(dirs.contains(&Direction::North));
        assert!(dirs.contains(&Direction::Local));
        assert_eq!(dirs.len(), 3);
    }
}
