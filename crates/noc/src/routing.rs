//! Deterministic XY dimension-order routing.
//!
//! XY routing first corrects the X (east/west) offset, then the Y
//! (north/south) offset. Because both the benign workloads and the flooding
//! attackers follow it, the attack path is a deterministic L-shaped route —
//! the property the paper's Victim Completing Enhancement and Table-Like
//! Method rely on.

use crate::topology::{Coord, Direction, Mesh, NodeId};

/// The output direction a router at `current` chooses for a flit destined to
/// `dst` under XY routing. Returns [`Direction::Local`] when
/// `current == dst`.
///
/// # Examples
///
/// ```
/// use noc_sim::{xy_next_hop, NodeId, Direction};
///
/// // On a 4x4 mesh, node 0 -> node 5 goes East first.
/// assert_eq!(xy_next_hop(NodeId(0), NodeId(5), 4), Direction::East);
/// // Once X is aligned (node 1 -> node 5), it goes North.
/// assert_eq!(xy_next_hop(NodeId(1), NodeId(5), 4), Direction::North);
/// ```
pub fn xy_next_hop(current: NodeId, dst: NodeId, cols: usize) -> Direction {
    let c = Coord::from_id(current, cols);
    let d = Coord::from_id(dst, cols);
    if c.x < d.x {
        Direction::East
    } else if c.x > d.x {
        Direction::West
    } else if c.y < d.y {
        Direction::North
    } else if c.y > d.y {
        Direction::South
    } else {
        Direction::Local
    }
}

/// The full XY route from `src` to `dst` (inclusive of both endpoints).
///
/// This is also the set of nodes the paper calls *routing-path victims*
/// (RPV) when `src` is an attacker and `dst` the target victim.
///
/// # Panics
///
/// Panics if either endpoint lies outside the mesh.
pub fn route_path(src: NodeId, dst: NodeId, mesh: &Mesh) -> Vec<NodeId> {
    assert!(mesh.contains(src), "source {src} outside mesh");
    assert!(mesh.contains(dst), "destination {dst} outside mesh");
    let mut path = vec![src];
    let mut current = src;
    while current != dst {
        let dir = xy_next_hop(current, dst, mesh.cols);
        current = mesh
            .neighbor(current, dir)
            .expect("XY routing stepped off the mesh");
        path.push(current);
    }
    path
}

/// The input direction at which traffic from `src` arrives at each node of
/// its XY route towards `dst`.
///
/// Returns `(node, input_direction)` pairs for every hop except the source
/// itself. The input direction at a node is the direction of the *upstream*
/// neighbour, e.g. traffic flowing westwards arrives on the East input port.
pub fn route_input_ports(src: NodeId, dst: NodeId, mesh: &Mesh) -> Vec<(NodeId, Direction)> {
    let path = route_path(src, dst, mesh);
    path.windows(2)
        .map(|w| {
            let (from, to) = (w[0], w[1]);
            // Find which direction `from` lies in, seen from `to`.
            let dir = Direction::CARDINAL
                .into_iter()
                .find(|&d| mesh.neighbor(to, d) == Some(from))
                .expect("adjacent nodes must be neighbours");
            (to, dir)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn next_hop_at_destination_is_local() {
        assert_eq!(xy_next_hop(NodeId(7), NodeId(7), 4), Direction::Local);
    }

    #[test]
    fn x_is_corrected_before_y() {
        // 4x4 mesh: 0=(0,0), 10=(2,2).
        assert_eq!(xy_next_hop(NodeId(0), NodeId(10), 4), Direction::East);
        assert_eq!(xy_next_hop(NodeId(2), NodeId(10), 4), Direction::North);
    }

    #[test]
    fn route_path_is_l_shaped() {
        let mesh = Mesh::new(4, 4);
        let path = route_path(NodeId(0), NodeId(10), &mesh);
        assert_eq!(
            path,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(6), NodeId(10)]
        );
    }

    #[test]
    fn route_path_same_node_is_singleton() {
        let mesh = Mesh::new(4, 4);
        assert_eq!(route_path(NodeId(5), NodeId(5), &mesh), vec![NodeId(5)]);
    }

    #[test]
    fn route_length_is_manhattan_plus_one() {
        let mesh = Mesh::new(8, 8);
        let src = NodeId(3);
        let dst = NodeId(60);
        let d = mesh.coord(src).manhattan(mesh.coord(dst));
        assert_eq!(route_path(src, dst, &mesh).len(), d + 1);
    }

    #[test]
    fn eastward_flood_arrives_on_west_ports() {
        // Attacker at node 0 flooding node 3 on a 4x4 mesh sends eastwards,
        // so victims see the traffic on their West input ports.
        let mesh = Mesh::new(4, 4);
        let ports = route_input_ports(NodeId(0), NodeId(3), &mesh);
        assert_eq!(ports.len(), 3);
        assert!(ports.iter().all(|&(_, d)| d == Direction::West));
    }

    #[test]
    fn westward_flood_arrives_on_east_ports() {
        let mesh = Mesh::new(4, 4);
        let ports = route_input_ports(NodeId(3), NodeId(0), &mesh);
        assert!(ports.iter().all(|&(_, d)| d == Direction::East));
    }

    #[test]
    fn northward_leg_arrives_on_south_ports() {
        let mesh = Mesh::new(4, 4);
        // 0 -> 12 is straight north.
        let ports = route_input_ports(NodeId(0), NodeId(12), &mesh);
        assert!(ports.iter().all(|&(_, d)| d == Direction::South));
    }

    proptest! {
        #[test]
        fn route_always_reaches_destination(
            src in 0usize..256, dst in 0usize..256
        ) {
            let mesh = Mesh::new(16, 16);
            let path = route_path(NodeId(src), NodeId(dst), &mesh);
            prop_assert_eq!(*path.first().unwrap(), NodeId(src));
            prop_assert_eq!(*path.last().unwrap(), NodeId(dst));
            // Every consecutive pair is adjacent.
            for w in path.windows(2) {
                let a = mesh.coord(w[0]);
                let b = mesh.coord(w[1]);
                prop_assert_eq!(a.manhattan(b), 1);
            }
        }

        #[test]
        fn route_is_minimal(src in 0usize..64, dst in 0usize..64) {
            let mesh = Mesh::new(8, 8);
            let path = route_path(NodeId(src), NodeId(dst), &mesh);
            let d = mesh.coord(NodeId(src)).manhattan(mesh.coord(NodeId(dst)));
            prop_assert_eq!(path.len(), d + 1);
        }

        #[test]
        fn next_hop_never_points_off_mesh(src in 0usize..64, dst in 0usize..64) {
            let mesh = Mesh::new(8, 8);
            let dir = xy_next_hop(NodeId(src), NodeId(dst), 8);
            if dir != Direction::Local {
                prop_assert!(mesh.neighbor(NodeId(src), dir).is_some());
            }
        }
    }
}
