//! Per-thread recorders: the cheap, lock-free front end of telemetry.

use crate::event::{Event, EventData};
use crate::hist::Histogram;
use crate::Shared;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many pending span events accumulate before an automatic flush.
const AUTO_FLUSH: usize = 128;

/// A per-thread telemetry recorder.
///
/// Recorders batch events, histograms and counters locally behind a
/// `RefCell` and only touch shared state (one mutex-guarded sink write) on
/// [`Recorder::flush`], on drop, or when the local batch fills up. They are
/// deliberately `!Send` (`Rc` inside): create one per thread via
/// [`crate::Telemetry::recorder`], never move one across threads.
///
/// A disabled recorder (the default) is a true no-op: no clocks are read,
/// nothing allocates.
///
/// # Examples
///
/// ```
/// use dl2fence_telemetry::Recorder;
///
/// let rec = Recorder::default(); // disabled
/// let value = rec.time("work", || 40 + 2); // no clock read, just runs
/// assert_eq!(value, 42);
/// ```
#[derive(Clone, Default)]
pub struct Recorder(Option<Rc<RecorderInner>>);

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(inner) => write!(f, "Recorder(enabled, worker {})", inner.worker),
            None => write!(f, "Recorder(disabled)"),
        }
    }
}

struct RecorderInner {
    shared: Arc<Shared>,
    /// Global recorder ordinal, stamped on every event this recorder emits.
    worker: u64,
    state: RefCell<RecState>,
}

#[derive(Default)]
struct RecState {
    /// Completed span events waiting for the next flush.
    pending: Vec<Event>,
    /// Names of the currently open spans, innermost last.
    stack: Vec<(String, Option<u64>, u64)>,
    /// Histogram deltas since the last flush. Linear scan: instrumented
    /// name cardinality is tiny (tens at most).
    hists: Vec<(String, Histogram)>,
    /// Counter deltas since the last flush.
    counters: Vec<(String, Option<u64>, u64)>,
}

impl Recorder {
    pub(crate) fn new(shared: Arc<Shared>) -> Self {
        let worker = shared.next_recorder();
        Recorder(Some(Rc::new(RecorderInner {
            shared,
            worker,
            state: RefCell::new(RecState::default()),
        })))
    }

    /// `true` if this recorder actually records.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Opens a scoped span; the span event is emitted when the returned
    /// guard drops. Nested spans record their parent's name.
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_impl(name, None)
    }

    /// Opens a scoped span tagged with an association index (run index,
    /// mesh size, ...).
    pub fn span_indexed(&self, name: &str, index: u64) -> SpanGuard {
        self.span_impl(name, Some(index))
    }

    fn span_impl(&self, name: &str, index: Option<u64>) -> SpanGuard {
        let Some(inner) = &self.0 else {
            return SpanGuard(None);
        };
        let start = Instant::now();
        let t_us = inner.shared.now_us(start);
        inner
            .state
            .borrow_mut()
            .stack
            .push((name.to_string(), index, t_us));
        SpanGuard(Some(SpanActive {
            inner: Rc::clone(inner),
            start,
        }))
    }

    /// Times `f` and records the duration into the `name` histogram.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let Some(_) = &self.0 else { return f() };
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed());
        out
    }

    /// Records one duration observation into the `name` histogram.
    pub fn record(&self, name: &str, d: Duration) {
        if let Some(inner) = &self.0 {
            let mut state = inner.state.borrow_mut();
            hist_entry(&mut state.hists, name).record(d);
        }
    }

    /// Records one duration observation in microseconds.
    pub fn record_us(&self, name: &str, us: u64) {
        if let Some(inner) = &self.0 {
            let mut state = inner.state.borrow_mut();
            hist_entry(&mut state.hists, name).record_us(us);
        }
    }

    /// Increments the `name` counter by `delta`.
    pub fn add(&self, name: &str, delta: u64) {
        self.add_impl(name, None, delta);
    }

    /// Increments the `name` counter tagged with an association index.
    pub fn add_indexed(&self, name: &str, index: u64, delta: u64) {
        self.add_impl(name, Some(index), delta);
    }

    fn add_impl(&self, name: &str, index: Option<u64>, delta: u64) {
        let Some(inner) = &self.0 else { return };
        let mut state = inner.state.borrow_mut();
        if let Some((_, _, v)) = state
            .counters
            .iter_mut()
            .find(|(n, i, _)| n == name && *i == index)
        {
            *v += delta;
        } else {
            state.counters.push((name.to_string(), index, delta));
        }
    }

    /// Flushes all pending spans plus the histogram/counter deltas
    /// accumulated since the previous flush.
    pub fn flush(&self) {
        if let Some(inner) = &self.0 {
            inner.flush(true);
        }
    }
}

impl Drop for RecorderInner {
    fn drop(&mut self) {
        self.flush(true);
    }
}

impl RecorderInner {
    /// Drains local state into the shared sink. `with_deltas` also emits
    /// histogram and counter delta events (auto-flushes of a full span
    /// buffer keep deltas local to bound event volume).
    fn flush(&self, with_deltas: bool) {
        let mut batch = {
            let mut state = self.state.borrow_mut();
            let mut batch = std::mem::take(&mut state.pending);
            if with_deltas {
                let now_us = self.shared.now_us(Instant::now());
                for (name, h) in state.hists.drain(..) {
                    if h.is_empty() {
                        continue;
                    }
                    batch.push(Event {
                        seq: 0,
                        t_us: now_us,
                        worker: self.worker,
                        data: EventData::Hist {
                            name,
                            count: h.count(),
                            sum_us: h.sum_us(),
                            max_us: h.max_us(),
                            buckets: trim_buckets(h.buckets()),
                        },
                    });
                }
                for (name, index, delta) in state.counters.drain(..) {
                    if delta == 0 {
                        continue;
                    }
                    batch.push(Event {
                        seq: 0,
                        t_us: now_us,
                        worker: self.worker,
                        data: EventData::Counter { name, delta, index },
                    });
                }
            }
            batch
        };
        if batch.is_empty() {
            return;
        }
        self.shared.submit(&mut batch);
    }
}

/// Drops trailing zero buckets so event lines stay short.
fn trim_buckets(buckets: &[u64]) -> Vec<u64> {
    let last = buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
    buckets[..last].to_vec()
}

fn hist_entry<'a>(hists: &'a mut Vec<(String, Histogram)>, name: &str) -> &'a mut Histogram {
    if let Some(i) = hists.iter().position(|(n, _)| n == name) {
        &mut hists[i].1
    } else {
        hists.push((name.to_string(), Histogram::new()));
        &mut hists.last_mut().expect("just pushed").1
    }
}

/// RAII guard for an open span; emits the span event on drop.
#[must_use = "a span measures the scope it lives in"]
pub struct SpanGuard(Option<SpanActive>);

struct SpanActive {
    inner: Rc<RecorderInner>,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        let dur_us = u64::try_from(active.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let needs_flush = {
            let mut state = active.inner.state.borrow_mut();
            let (name, index, t_us) = state
                .stack
                .pop()
                .expect("span stack underflow: guards dropped out of order");
            let parent = state.stack.last().map(|(n, _, _)| n.clone());
            state.pending.push(Event {
                seq: 0,
                t_us,
                worker: active.inner.worker,
                data: EventData::Span {
                    name,
                    dur_us,
                    parent,
                    index,
                },
            });
            state.pending.len() >= AUTO_FLUSH
        };
        if needs_flush {
            active.inner.flush(false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemorySink, Telemetry};

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::default();
        assert!(!rec.is_enabled());
        let _s = rec.span("x");
        rec.record_us("h", 5);
        rec.add("c", 1);
        rec.flush();
        assert_eq!(rec.time("t", || 7), 7);
    }

    #[test]
    fn spans_record_parent_and_index() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        let rec = tel.recorder();
        {
            let _outer = rec.span("outer");
            let _inner = rec.span_indexed("inner", 3);
        }
        rec.flush();
        let events = sink.take();
        assert_eq!(events.len(), 2);
        // Inner span finishes (and is recorded) first.
        match &events[0].data {
            EventData::Span {
                name,
                parent,
                index,
                ..
            } => {
                assert_eq!(name, "inner");
                assert_eq!(parent.as_deref(), Some("outer"));
                assert_eq!(*index, Some(3));
            }
            other => panic!("expected span, got {other:?}"),
        }
        match &events[1].data {
            EventData::Span { name, parent, .. } => {
                assert_eq!(name, "outer");
                assert!(parent.is_none());
            }
            other => panic!("expected span, got {other:?}"),
        }
        // Sequence numbers are unique and increasing within the batch.
        assert!(events[0].seq < events[1].seq);
    }

    #[test]
    fn hist_and_counter_deltas_reset_after_flush() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        let rec = tel.recorder();
        rec.record_us("lat", 10);
        rec.record_us("lat", 20);
        rec.add_indexed("jobs", 0, 2);
        rec.flush();
        rec.record_us("lat", 30);
        rec.flush();
        let events = sink.take();
        let hists: Vec<_> = events
            .iter()
            .filter_map(|e| match &e.data {
                EventData::Hist { count, .. } => Some(*count),
                _ => None,
            })
            .collect();
        assert_eq!(hists, vec![2, 1], "deltas, not cumulative totals");
        let total: u64 = events
            .iter()
            .filter_map(|e| match &e.data {
                EventData::Counter { delta, .. } => Some(*delta),
                _ => None,
            })
            .sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn drop_flushes_outstanding_state() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        {
            let rec = tel.recorder();
            rec.add("dropped", 1);
        }
        assert_eq!(sink.take().len(), 1);
    }

    #[test]
    fn auto_flush_bounds_pending_spans() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        let rec = tel.recorder();
        for _ in 0..AUTO_FLUSH {
            let _s = rec.span("tick");
        }
        // The batch filled up and went to the sink without an explicit flush.
        assert_eq!(sink.take().len(), AUTO_FLUSH);
    }
}
