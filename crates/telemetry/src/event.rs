//! The telemetry event model and its JSONL wire format.
//!
//! Events are serialized one per line as flat JSON objects with a fixed
//! field order, written by [`crate::JsonlSink`] and read back by
//! [`Event::parse`]. The format is hand-rolled (this crate is
//! dependency-free) and restricted to what events need: string values,
//! `u64` numbers and arrays of `u64`. Every number is an integer count or a
//! microsecond duration — no floats, so emit→parse→emit is byte-identical.

use crate::hist::Histogram;

/// One telemetry event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number, unique per event log.
    pub seq: u64,
    /// Microseconds since the telemetry epoch (process start of recording).
    pub t_us: u64,
    /// Ordinal of the recorder (≈ thread) that produced the event.
    pub worker: u64,
    /// The payload.
    pub data: EventData,
}

/// The payload of an [`Event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventData {
    /// A completed scoped timer. `t_us` is the span's start time.
    Span {
        /// Span name, e.g. `"run"` or `"eval.train"`.
        name: String,
        /// Wall-clock duration in microseconds.
        dur_us: u64,
        /// Name of the enclosing span on the same recorder, if any.
        parent: Option<String>,
        /// Optional association index (run index, mesh size, ...).
        index: Option<u64>,
    },
    /// A monotonic counter increment (a delta, not an absolute value).
    Counter {
        /// Counter name, e.g. `"executor.worker_panics"`.
        name: String,
        /// Increment since the counter's previous event.
        delta: u64,
        /// Optional association index (worker ordinal, run index, ...).
        index: Option<u64>,
    },
    /// A latency histogram delta: the observations recorded under `name`
    /// since the recorder's previous flush. Readers merge all `Hist` events
    /// with the same name to recover the full distribution.
    Hist {
        /// Histogram name, e.g. `"stage.detect"`.
        name: String,
        /// Observations in this delta.
        count: u64,
        /// Sum of observations in microseconds.
        sum_us: u64,
        /// Maximum observation in microseconds.
        max_us: u64,
        /// Power-of-two bucket counts (see [`crate::hist::BUCKET_COUNT`]).
        buckets: Vec<u64>,
    },
}

impl Event {
    /// The payload's name (span, counter or histogram name).
    pub fn name(&self) -> &str {
        match &self.data {
            EventData::Span { name, .. }
            | EventData::Counter { name, .. }
            | EventData::Hist { name, .. } => name,
        }
    }

    /// Serializes the event as one JSON line (no trailing newline).
    pub fn emit(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"seq\":");
        push_u64(&mut s, self.seq);
        s.push_str(",\"t_us\":");
        push_u64(&mut s, self.t_us);
        s.push_str(",\"worker\":");
        push_u64(&mut s, self.worker);
        match &self.data {
            EventData::Span {
                name,
                dur_us,
                parent,
                index,
            } => {
                s.push_str(",\"kind\":\"span\",\"name\":");
                push_str(&mut s, name);
                s.push_str(",\"dur_us\":");
                push_u64(&mut s, *dur_us);
                if let Some(p) = parent {
                    s.push_str(",\"parent\":");
                    push_str(&mut s, p);
                }
                if let Some(i) = index {
                    s.push_str(",\"index\":");
                    push_u64(&mut s, *i);
                }
            }
            EventData::Counter { name, delta, index } => {
                s.push_str(",\"kind\":\"counter\",\"name\":");
                push_str(&mut s, name);
                s.push_str(",\"delta\":");
                push_u64(&mut s, *delta);
                if let Some(i) = index {
                    s.push_str(",\"index\":");
                    push_u64(&mut s, *i);
                }
            }
            EventData::Hist {
                name,
                count,
                sum_us,
                max_us,
                buckets,
            } => {
                s.push_str(",\"kind\":\"hist\",\"name\":");
                push_str(&mut s, name);
                s.push_str(",\"count\":");
                push_u64(&mut s, *count);
                s.push_str(",\"sum_us\":");
                push_u64(&mut s, *sum_us);
                s.push_str(",\"max_us\":");
                push_u64(&mut s, *max_us);
                s.push_str(",\"buckets\":[");
                for (i, b) in buckets.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    push_u64(&mut s, *b);
                }
                s.push(']');
            }
        }
        s.push('}');
        s
    }

    /// Parses one JSON event line produced by [`Event::emit`].
    ///
    /// Field order is not significant on input; unknown fields are rejected
    /// so schema drift is caught loudly rather than silently dropped.
    pub fn parse(line: &str) -> Result<Event, ParseError> {
        let fields = parse_object(line)?;
        let mut seq = None;
        let mut t_us = None;
        let mut worker = None;
        let mut kind = None;
        let mut name = None;
        let mut dur_us = None;
        let mut parent = None;
        let mut index = None;
        let mut delta = None;
        let mut count = None;
        let mut sum_us = None;
        let mut max_us = None;
        let mut buckets = None;
        for (key, value) in fields {
            match (key.as_str(), value) {
                ("seq", Value::Num(n)) => seq = Some(n),
                ("t_us", Value::Num(n)) => t_us = Some(n),
                ("worker", Value::Num(n)) => worker = Some(n),
                ("kind", Value::Str(s)) => kind = Some(s),
                ("name", Value::Str(s)) => name = Some(s),
                ("dur_us", Value::Num(n)) => dur_us = Some(n),
                ("parent", Value::Str(s)) => parent = Some(s),
                ("index", Value::Num(n)) => index = Some(n),
                ("delta", Value::Num(n)) => delta = Some(n),
                ("count", Value::Num(n)) => count = Some(n),
                ("sum_us", Value::Num(n)) => sum_us = Some(n),
                ("max_us", Value::Num(n)) => max_us = Some(n),
                ("buckets", Value::Arr(a)) => buckets = Some(a),
                (k, _) => return Err(ParseError(format!("unexpected field `{k}`"))),
            }
        }
        let seq = seq.ok_or_else(|| ParseError("missing `seq`".into()))?;
        let t_us = t_us.ok_or_else(|| ParseError("missing `t_us`".into()))?;
        let worker = worker.ok_or_else(|| ParseError("missing `worker`".into()))?;
        let kind = kind.ok_or_else(|| ParseError("missing `kind`".into()))?;
        let name = name.ok_or_else(|| ParseError("missing `name`".into()))?;
        let data = match kind.as_str() {
            "span" => EventData::Span {
                name,
                dur_us: dur_us.ok_or_else(|| ParseError("span missing `dur_us`".into()))?,
                parent,
                index,
            },
            "counter" => EventData::Counter {
                name,
                delta: delta.ok_or_else(|| ParseError("counter missing `delta`".into()))?,
                index,
            },
            "hist" => EventData::Hist {
                name,
                count: count.ok_or_else(|| ParseError("hist missing `count`".into()))?,
                sum_us: sum_us.ok_or_else(|| ParseError("hist missing `sum_us`".into()))?,
                max_us: max_us.ok_or_else(|| ParseError("hist missing `max_us`".into()))?,
                buckets: buckets.ok_or_else(|| ParseError("hist missing `buckets`".into()))?,
            },
            other => return Err(ParseError(format!("unknown kind `{other}`"))),
        };
        Ok(Event {
            seq,
            t_us,
            worker,
            data,
        })
    }

    /// Builds a [`Histogram`] from a `Hist` payload; `None` for other kinds.
    pub fn as_histogram(&self) -> Option<Histogram> {
        match &self.data {
            EventData::Hist {
                count,
                sum_us,
                max_us,
                buckets,
                ..
            } => Some(Histogram::from_parts(*count, *sum_us, *max_us, buckets)),
            _ => None,
        }
    }
}

/// An event line that is not valid event JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid event line: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn push_u64(s: &mut String, n: u64) {
    use std::fmt::Write;
    let _ = write!(s, "{n}");
}

fn push_str(s: &mut String, value: &str) {
    s.push('"');
    for c in value.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                s.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

/// The restricted value space of event JSON.
enum Value {
    Str(String),
    Num(u64),
    Arr(Vec<u64>),
}

/// A minimal cursor over the byte representation of one JSON line.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_u64(&mut self) -> Result<u64, ParseError> {
        let start = self.pos;
        let mut n: u64 = 0;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            n = n
                .checked_mul(10)
                .and_then(|n| n.checked_add(u64::from(b - b'0')))
                .ok_or_else(|| ParseError(format!("number overflow at byte {start}")))?;
            self.pos += 1;
        }
        if self.pos == start {
            return Err(ParseError(format!("expected a number at byte {start}")));
        }
        Ok(n)
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| ParseError("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| ParseError("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.parse_unicode_escape()?),
                        other => {
                            return Err(ParseError(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at the byte we
                    // just consumed; the input is a &str so it is valid UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| ParseError("truncated UTF-8".into()))?;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| ParseError("invalid UTF-8".into()))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| ParseError("truncated \\u escape".into()))?;
            self.pos += 1;
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(ParseError("bad hex digit in \\u escape".into())),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_unicode_escape(&mut self) -> Result<char, ParseError> {
        let hi = self.parse_hex4()?;
        if (0xD800..=0xDBFF).contains(&hi) {
            // Surrogate pair: expect a following \uDCxx low surrogate.
            self.expect(b'\\')?;
            self.expect(b'u')?;
            let lo = self.parse_hex4()?;
            if !(0xDC00..=0xDFFF).contains(&lo) {
                return Err(ParseError("unpaired surrogate".into()));
            }
            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(cp).ok_or_else(|| ParseError("invalid surrogate pair".into()))
        } else {
            char::from_u32(hi).ok_or_else(|| ParseError("invalid \\u escape".into()))
        }
    }

    fn parse_array(&mut self) -> Result<Vec<u64>, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.skip_ws();
            out.push(self.parse_u64()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(ParseError("expected `,` or `]` in array".into())),
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => Ok(Value::Arr(self.parse_array()?)),
            Some(b'0'..=b'9') => Ok(Value::Num(self.parse_u64()?)),
            _ => Err(ParseError(format!("expected a value at byte {}", self.pos))),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first < 0xE0 {
        2
    } else if first < 0xF0 {
        3
    } else {
        4
    }
}

fn parse_object(line: &str) -> Result<Vec<(String, Value)>, ParseError> {
    let mut c = Cursor::new(line);
    c.skip_ws();
    c.expect(b'{')?;
    let mut fields = Vec::new();
    c.skip_ws();
    if c.peek() == Some(b'}') {
        c.pos += 1;
    } else {
        loop {
            c.skip_ws();
            let key = c.parse_string()?;
            c.skip_ws();
            c.expect(b':')?;
            let value = c.parse_value()?;
            fields.push((key, value));
            c.skip_ws();
            match c.peek() {
                Some(b',') => c.pos += 1,
                Some(b'}') => {
                    c.pos += 1;
                    break;
                }
                _ => return Err(ParseError("expected `,` or `}` in object".into())),
            }
        }
    }
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return Err(ParseError(format!("trailing bytes at {}", c.pos)));
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(e: &Event) {
        let line = e.emit();
        let back = Event::parse(&line).expect("parse");
        assert_eq!(&back, e);
        assert_eq!(back.emit(), line, "emit→parse→emit must be byte-stable");
    }

    #[test]
    fn span_round_trip() {
        round_trip(&Event {
            seq: 7,
            t_us: 123,
            worker: 2,
            data: EventData::Span {
                name: "run".into(),
                dur_us: 456,
                parent: Some("campaign.execute".into()),
                index: Some(9),
            },
        });
        round_trip(&Event {
            seq: 0,
            t_us: 0,
            worker: 0,
            data: EventData::Span {
                name: "stage.detect".into(),
                dur_us: 0,
                parent: None,
                index: None,
            },
        });
    }

    #[test]
    fn counter_and_hist_round_trip() {
        round_trip(&Event {
            seq: 1,
            t_us: 2,
            worker: 3,
            data: EventData::Counter {
                name: "executor.worker_panics".into(),
                delta: 1,
                index: Some(4),
            },
        });
        round_trip(&Event {
            seq: 99,
            t_us: u64::MAX,
            worker: 1,
            data: EventData::Hist {
                name: "worker.queue_wait".into(),
                count: 3,
                sum_us: 300,
                max_us: 200,
                buckets: vec![0, 1, 2],
            },
        });
    }

    #[test]
    fn tricky_names_round_trip() {
        for name in [
            "a\"b",
            "back\\slash",
            "tab\there",
            "nl\nthere",
            "emoji🦀",
            "nul\u{0000}",
        ] {
            round_trip(&Event {
                seq: 1,
                t_us: 1,
                worker: 1,
                data: EventData::Counter {
                    name: name.to_string(),
                    delta: 1,
                    index: None,
                },
            });
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Event::parse("").is_err());
        assert!(Event::parse("{}").is_err());
        assert!(Event::parse("{\"seq\":1").is_err());
        assert!(Event::parse("{\"seq\":1,\"bogus\":2}").is_err());
        assert!(Event::parse("not json at all").is_err());
    }

    #[test]
    fn as_histogram_reconstructs() {
        let e = Event {
            seq: 1,
            t_us: 1,
            worker: 1,
            data: EventData::Hist {
                name: "h".into(),
                count: 2,
                sum_us: 6,
                max_us: 4,
                buckets: vec![0, 0, 1, 1],
            },
        };
        let h = e.as_histogram().unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_us(), 4);
    }
}
