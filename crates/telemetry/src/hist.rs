//! Fixed-bucket latency histograms with power-of-two microsecond buckets.

/// Number of buckets in every [`Histogram`].
///
/// Bucket `0` holds exact zeros; bucket `i > 0` holds durations in
/// `[2^(i-1), 2^i)` microseconds. The last bucket is open-ended, which at 40
/// buckets means "anything over ~2.3 minutes" — far beyond any latency this
/// workspace measures.
pub const BUCKET_COUNT: usize = 40;

/// A fixed-bucket latency histogram over integer microseconds.
///
/// The bucket layout is fixed (see [`BUCKET_COUNT`]) so histograms recorded
/// by different threads, processes or campaign shards merge exactly:
/// bucket-wise addition loses nothing relative to recording into a single
/// histogram. Quantiles are estimated by linear interpolation inside the
/// containing bucket and clamped by the exact observed maximum.
///
/// # Examples
///
/// ```
/// use dl2fence_telemetry::Histogram;
///
/// let mut h = Histogram::new();
/// for us in [100, 200, 300, 400, 1000] {
///     h.record_us(us);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max_us(), 1000);
/// assert!(h.p50_us() >= 128 && h.p50_us() <= 511);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum_us: u64,
    max_us: u64,
    buckets: [u64; BUCKET_COUNT],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index that holds a duration of `us` microseconds.
fn bucket_index(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        let bits = 64 - us.leading_zeros() as usize;
        bits.min(BUCKET_COUNT - 1)
    }
}

/// Inclusive `(low, high)` microsecond range covered by bucket `index`.
fn bucket_range(index: usize) -> (u64, u64) {
    if index == 0 {
        (0, 0)
    } else if index == BUCKET_COUNT - 1 {
        (1u64 << (index - 1), u64::MAX)
    } else {
        (1u64 << (index - 1), (1u64 << index) - 1)
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum_us: 0,
            max_us: 0,
            buckets: [0; BUCKET_COUNT],
        }
    }

    /// Rebuilds a histogram from previously serialized parts.
    ///
    /// Buckets beyond [`BUCKET_COUNT`] are folded into the last bucket so
    /// event logs stay readable even if the layout ever grows.
    pub fn from_parts(count: u64, sum_us: u64, max_us: u64, buckets: &[u64]) -> Self {
        let mut h = Histogram {
            count,
            sum_us,
            max_us,
            buckets: [0; BUCKET_COUNT],
        };
        for (i, &b) in buckets.iter().enumerate() {
            h.buckets[i.min(BUCKET_COUNT - 1)] += b;
        }
        h
    }

    /// Records one observation of `us` microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
        self.buckets[bucket_index(us)] += 1;
    }

    /// Records a [`std::time::Duration`], saturating at `u64::MAX` µs.
    pub fn record(&mut self, d: std::time::Duration) {
        self.record_us(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Merges another histogram into this one, bucket-wise.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// The exact maximum observation in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean observation in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) in microseconds.
    ///
    /// The estimate interpolates linearly inside the containing bucket and is
    /// clamped by the exact observed maximum, so `quantile_us(1.0)` equals
    /// [`Histogram::max_us`].
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cumulative + n >= rank {
                let (lo, _) = bucket_range(i);
                // Cap the interpolation ceiling at the observed max: the true
                // largest sample in any bucket can never exceed it.
                let hi = bucket_range(i).1.min(self.max_us).max(lo);
                let frac = (rank - cumulative) as f64 / n as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return (est.round() as u64).min(self.max_us);
            }
            cumulative += n;
        }
        self.max_us
    }

    /// The median estimate in microseconds.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// The 90th-percentile estimate in microseconds.
    pub fn p90_us(&self) -> u64 {
        self.quantile_us(0.90)
    }

    /// The 99th-percentile estimate in microseconds.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn quantiles_are_ordered_and_clamped() {
        let mut h = Histogram::new();
        for us in [10, 20, 30, 40, 50, 60, 70, 80, 90, 5000] {
            h.record_us(us);
        }
        assert!(h.p50_us() <= h.p90_us());
        assert!(h.p90_us() <= h.p99_us());
        assert!(h.p99_us() <= h.max_us());
        assert_eq!(h.quantile_us(1.0), 5000);
    }

    #[test]
    fn merge_equals_single_recording() {
        let samples = [3u64, 17, 17, 250, 90000, 0, 1];
        let mut whole = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &s) in samples.iter().enumerate() {
            whole.record_us(s);
            if i % 2 == 0 {
                a.record_us(s)
            } else {
                b.record_us(s)
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = Histogram::new();
        for us in [5, 5, 1024, 0] {
            h.record_us(us);
        }
        let again = Histogram::from_parts(h.count(), h.sum_us(), h.max_us(), h.buckets());
        assert_eq!(h, again);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50_us(), 0);
        assert_eq!(h.mean_us(), 0);
    }
}
