//! Versioned JSON schema identifiers for every self-describing artifact
//! the workspace writes.
//!
//! Each identifier is `<producer>/<artifact>/v<version>` and is stamped
//! into the artifact's `schema` field. Consumers (CI greps, the benchmark
//! baseline differ, external tooling) match on the exact string, so a
//! format change that is not read-compatible MUST bump the version here —
//! and only here: every producer re-exports its constant from this module,
//! which is what keeps a topology- or attack-axis field addition a
//! single-line version decision instead of a scavenger hunt.

/// `campaign report --timings` / `campaign watch` timing summaries
/// (committed baselines live in `BENCH_campaign.json`).
pub const TIMINGS_SCHEMA: &str = "dl2fence-campaign/timings/v1";

/// `dl2fence-serve status --json` snapshots.
pub const STATUS_SCHEMA: &str = "dl2fence-serve/status/v1";

/// `manifest.json` at the root of a streaming campaign directory.
/// Manifests written before the tag existed carry an empty `schema`
/// field and stay loadable.
pub const MANIFEST_SCHEMA: &str = "dl2fence-campaign/manifest/v1";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifiers_follow_the_producer_artifact_version_shape() {
        for id in [TIMINGS_SCHEMA, STATUS_SCHEMA, MANIFEST_SCHEMA] {
            let parts: Vec<&str> = id.split('/').collect();
            assert_eq!(parts.len(), 3, "{id} must be producer/artifact/version");
            assert!(parts[0].starts_with("dl2fence"), "{id}");
            assert!(parts[2].starts_with('v'), "{id}");
            assert!(parts[2][1..].parse::<u32>().is_ok(), "{id}");
        }
    }
}
