//! Event sinks: where flushed telemetry batches go.

use crate::event::Event;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

/// Destination for flushed telemetry events.
///
/// Implementations receive whole recorder batches; `events` is drained by
/// the call (recorders reuse the buffer). A sink must tolerate concurrent
/// calls from many threads.
pub trait TelemetrySink: Send + Sync {
    /// Consumes one batch of events.
    fn append(&self, events: &mut Vec<Event>);
}

/// A sink that appends events to a JSONL file, one event per line.
///
/// Each batch is serialized into a single buffer and written with one
/// `write_all` + `flush` under a mutex, so an interrupted process tears at
/// most the final batch — exactly the torn-tail shape the campaign log
/// scanner already heals.
pub struct JsonlSink {
    file: Mutex<File>,
}

impl JsonlSink {
    /// Creates (or truncates) `path` and returns a sink writing to it.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlSink {
            file: Mutex::new(File::create(path)?),
        })
    }

    /// Opens `path` for appending (creating it if missing).
    pub fn append_to(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlSink {
            file: Mutex::new(OpenOptions::new().create(true).append(true).open(path)?),
        })
    }
}

impl TelemetrySink for JsonlSink {
    fn append(&self, events: &mut Vec<Event>) {
        let mut buf = String::with_capacity(events.len() * 96);
        for e in events.drain(..) {
            buf.push_str(&e.emit());
            buf.push('\n');
        }
        let mut file = self.file.lock().expect("telemetry sink poisoned");
        // Telemetry is best-effort: a full disk must not kill the campaign.
        let _ = file.write_all(buf.as_bytes());
        let _ = file.flush();
    }
}

/// An in-memory sink for tests and the overhead guard.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy of everything captured so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Drains and returns everything captured so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("memory sink poisoned"))
    }
}

impl TelemetrySink for MemorySink {
    fn append(&self, events: &mut Vec<Event>) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .append(events);
    }
}
