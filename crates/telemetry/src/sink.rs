//! Event sinks: where flushed telemetry batches go.

use crate::event::{Event, EventData};
use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

/// Destination for flushed telemetry events.
///
/// Implementations receive whole recorder batches; `events` is drained by
/// the call (recorders reuse the buffer). A sink must tolerate concurrent
/// calls from many threads.
pub trait TelemetrySink: Send + Sync {
    /// Consumes one batch of events.
    fn append(&self, events: &mut Vec<Event>);
}

/// A sink that appends events to a JSONL file, one event per line.
///
/// Each batch is serialized into a single buffer and written with one
/// `write_all` + `flush` under a mutex, so an interrupted process tears at
/// most the final batch — exactly the torn-tail shape the campaign log
/// scanner already heals.
pub struct JsonlSink {
    file: Mutex<File>,
}

impl JsonlSink {
    /// Creates (or truncates) `path` and returns a sink writing to it.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlSink {
            file: Mutex::new(File::create(path)?),
        })
    }

    /// Opens `path` for appending (creating it if missing).
    pub fn append_to(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlSink {
            file: Mutex::new(OpenOptions::new().create(true).append(true).open(path)?),
        })
    }
}

impl TelemetrySink for JsonlSink {
    fn append(&self, events: &mut Vec<Event>) {
        let mut buf = String::with_capacity(events.len() * 96);
        for e in events.drain(..) {
            buf.push_str(&e.emit());
            buf.push('\n');
        }
        let mut file = self.file.lock().expect("telemetry sink poisoned");
        // Telemetry is best-effort: a full disk must not kill the campaign.
        let _ = file.write_all(buf.as_bytes());
        let _ = file.flush();
    }
}

/// An in-memory sink for tests and the overhead guard.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy of everything captured so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Drains and returns everything captured so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("memory sink poisoned"))
    }
}

impl TelemetrySink for MemorySink {
    fn append(&self, events: &mut Vec<Event>) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .append(events);
    }
}

/// A bounded folding sink for long-lived processes.
///
/// [`MemorySink`] keeps every event, so its memory grows without bound — the
/// right shape for a test but not for a service that records latencies for
/// days. `AggregateSink` instead folds each batch as it arrives: histogram
/// deltas merge bucket-wise into one [`Histogram`] per name, counter deltas
/// sum into one total per name, and span durations fold into a histogram
/// under the span's name. Memory is `O(distinct names)` regardless of event
/// volume, and the merged state is exactly what recording into a single
/// histogram/counter would have produced.
#[derive(Default)]
pub struct AggregateSink {
    state: Mutex<AggregateState>,
}

#[derive(Default, Clone)]
struct AggregateState {
    histograms: BTreeMap<String, Histogram>,
    counters: BTreeMap<String, u64>,
}

impl AggregateSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The merged histogram recorded under `name`, if any observations
    /// arrived (span durations fold in under the span's name too).
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.state
            .lock()
            .expect("aggregate sink poisoned")
            .histograms
            .get(name)
            .cloned()
    }

    /// The summed counter total for `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.state
            .lock()
            .expect("aggregate sink poisoned")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// A snapshot of every merged histogram, keyed and ordered by name.
    pub fn histograms(&self) -> BTreeMap<String, Histogram> {
        self.state
            .lock()
            .expect("aggregate sink poisoned")
            .histograms
            .clone()
    }

    /// A snapshot of every counter total, keyed and ordered by name.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.state
            .lock()
            .expect("aggregate sink poisoned")
            .counters
            .clone()
    }
}

impl TelemetrySink for AggregateSink {
    fn append(&self, events: &mut Vec<Event>) {
        let mut state = self.state.lock().expect("aggregate sink poisoned");
        for e in events.drain(..) {
            match e.data {
                EventData::Span { name, dur_us, .. } => {
                    state.histograms.entry(name).or_default().record_us(dur_us);
                }
                EventData::Counter { name, delta, .. } => {
                    *state.counters.entry(name).or_insert(0) += delta;
                }
                EventData::Hist {
                    name,
                    count,
                    sum_us,
                    max_us,
                    buckets,
                } => {
                    let delta = Histogram::from_parts(count, sum_us, max_us, &buckets);
                    state.histograms.entry(name).or_default().merge(&delta);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemorySink, Telemetry};
    use std::sync::Arc;

    #[test]
    fn aggregate_sink_matches_single_histogram_recording() {
        let agg = Arc::new(AggregateSink::new());
        let tel = Telemetry::with_sink(agg.clone());
        let mut reference = Histogram::new();
        // Two recorders flushing interleaved deltas must merge to exactly
        // what one histogram would have seen.
        for (rec_id, samples) in [(0usize, [3u64, 900, 17]), (1, [0, 250_000, 64])] {
            let rec = tel.recorder();
            for s in samples {
                rec.record_us("serve.e2e", s);
                reference.record_us(s);
            }
            rec.add("serve.accepted", rec_id as u64 + 1);
            rec.flush();
        }
        assert_eq!(agg.histogram("serve.e2e"), Some(reference));
        assert_eq!(agg.counter("serve.accepted"), 3);
        assert_eq!(agg.counter("never.touched"), 0);
        assert!(agg.histogram("never.touched").is_none());
    }

    #[test]
    fn aggregate_sink_folds_spans_into_histograms() {
        let agg = Arc::new(AggregateSink::new());
        let mut batch = vec![Event {
            seq: 0,
            t_us: 5,
            worker: 0,
            data: EventData::Span {
                name: "request".into(),
                dur_us: 120,
                parent: None,
                index: None,
            },
        }];
        agg.append(&mut batch);
        assert!(batch.is_empty(), "sink must drain the batch");
        let h = agg.histogram("request").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_us(), 120);
        assert_eq!(agg.histograms().len(), 1);
        assert!(agg.counters().is_empty());
    }

    #[test]
    fn aggregate_sink_memory_is_bounded_by_name_count() {
        let agg = Arc::new(AggregateSink::new());
        let mem = MemorySink::new();
        for i in 0..1000u64 {
            let mut batch = vec![Event {
                seq: i,
                t_us: i,
                worker: 0,
                data: EventData::Counter {
                    name: "reject.queue_full".into(),
                    delta: 1,
                    index: None,
                },
            }];
            mem.append(&mut batch.clone());
            agg.append(&mut batch);
        }
        assert_eq!(mem.snapshot().len(), 1000);
        assert_eq!(agg.counters().len(), 1, "folded to one entry per name");
        assert_eq!(agg.counter("reject.queue_full"), 1000);
    }
}
