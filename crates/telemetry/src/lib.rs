//! `dl2fence-telemetry`: std-only structured observability.
//!
//! The crate is split along the hot/cold boundary:
//!
//! - [`Telemetry`] is the cheap, `Send + Sync` handle that instrumented code
//!   stores. Disabled (the default) it is a single `None` — instrumented
//!   paths pay one branch and read no clocks.
//! - [`Recorder`] is the per-thread front end: spans (scoped timers with
//!   parent context), counters and fixed-bucket latency [`Histogram`]s,
//!   batched locally and flushed to the shared [`TelemetrySink`].
//! - [`Event`] is the wire format: flat, integer-only JSON, one event per
//!   line, written so a crashed process tears at most the final line —
//!   the same torn-tail contract as the campaign run log.
//!
//! # Examples
//!
//! ```
//! use dl2fence_telemetry::{MemorySink, Telemetry};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let tel = Telemetry::with_sink(sink.clone());
//! let rec = tel.recorder();
//! {
//!     let _span = rec.span("request");
//!     rec.record_us("db.query", 120);
//!     rec.add("requests", 1);
//! }
//! rec.flush();
//! assert_eq!(sink.snapshot().len(), 3); // span + hist + counter
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod hist;
mod recorder;
pub mod schema;
mod sink;

pub use event::{Event, EventData, ParseError};
pub use hist::{Histogram, BUCKET_COUNT};
pub use recorder::{Recorder, SpanGuard};
pub use sink::{AggregateSink, JsonlSink, MemorySink, TelemetrySink};

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared state behind an enabled [`Telemetry`] handle.
pub(crate) struct Shared {
    sink: Arc<dyn TelemetrySink>,
    epoch: Instant,
    next_seq: AtomicU64,
    next_recorder: AtomicU64,
}

impl Shared {
    /// Microseconds from the telemetry epoch to `at`.
    pub(crate) fn now_us(&self, at: Instant) -> u64 {
        u64::try_from(at.saturating_duration_since(self.epoch).as_micros()).unwrap_or(u64::MAX)
    }

    /// Allocates the next recorder ordinal.
    pub(crate) fn next_recorder(&self) -> u64 {
        self.next_recorder.fetch_add(1, Ordering::Relaxed)
    }

    /// Stamps unique sequence numbers onto `batch` and hands it to the sink.
    pub(crate) fn submit(&self, batch: &mut Vec<Event>) {
        let base = self
            .next_seq
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        for (i, e) in batch.iter_mut().enumerate() {
            e.seq = base + i as u64;
        }
        self.sink.append(batch);
    }
}

/// The telemetry handle instrumented code stores and clones freely.
///
/// `Telemetry::default()` is disabled: every operation is a no-op and no
/// clock is ever read, which is what keeps campaign reports byte-identical
/// with telemetry on or off. An enabled handle routes recorder batches to
/// its [`TelemetrySink`].
#[derive(Clone, Default)]
pub struct Telemetry {
    shared: Option<Arc<Shared>>,
}

impl Telemetry {
    /// The disabled (no-op) handle; same as `Telemetry::default()`.
    pub fn disabled() -> Self {
        Telemetry { shared: None }
    }

    /// An enabled handle flushing to `sink`.
    pub fn with_sink(sink: Arc<dyn TelemetrySink>) -> Self {
        Telemetry {
            shared: Some(Arc::new(Shared {
                sink,
                epoch: Instant::now(),
                next_seq: AtomicU64::new(0),
                next_recorder: AtomicU64::new(0),
            })),
        }
    }

    /// An enabled handle writing JSONL events to a fresh file at `path`
    /// (truncating anything already there).
    pub fn to_jsonl_file(path: &Path) -> std::io::Result<Self> {
        Ok(Self::with_sink(Arc::new(JsonlSink::create(path)?)))
    }

    /// An enabled handle appending to an existing JSONL event log.
    ///
    /// Sequence numbers continue after the largest one already in the file,
    /// so a resumed campaign keeps `seq` unique across the whole log. The
    /// log is first healed to its longest valid prefix: a torn final line
    /// (the shape of a crash mid-append, with or without its newline) is
    /// truncated away — appending after it would weld the next event onto
    /// the garbage and lose both.
    pub fn append_jsonl_file(path: &Path) -> std::io::Result<Self> {
        let mut next_seq = 0u64;
        let mut valid_bytes = 0u64;
        if let Ok(bytes) = std::fs::read(path) {
            let mut offset = 0usize;
            while offset < bytes.len() {
                // A final line without its newline is torn even when it
                // parses: the newline write may still be in flight. A torn
                // tail can also split a multi-byte character, so decode
                // per line rather than whole-file.
                let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
                    break;
                };
                let end = offset + nl + 1;
                let Ok(line) = std::str::from_utf8(&bytes[offset..end - 1]) else {
                    break;
                };
                let Ok(e) = Event::parse(line) else {
                    break;
                };
                next_seq = next_seq.max(e.seq + 1);
                valid_bytes = end as u64;
                offset = end;
            }
            if valid_bytes < bytes.len() as u64 {
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(path)?
                    .set_len(valid_bytes)?;
            }
        }
        let tel = Self::with_sink(Arc::new(JsonlSink::append_to(path)?));
        if let Some(shared) = &tel.shared {
            shared.next_seq.store(next_seq, Ordering::Relaxed);
        }
        Ok(tel)
    }

    /// `true` if events are actually being recorded.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Creates a per-thread [`Recorder`]. Disabled handles return a
    /// disabled (free) recorder.
    pub fn recorder(&self) -> Recorder {
        match &self.shared {
            Some(shared) => Recorder::new(Arc::clone(shared)),
            None => Recorder::default(),
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Telemetry({})",
            if self.is_enabled() {
                "enabled"
            } else {
                "disabled"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_produces_disabled_recorders() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        assert!(!tel.recorder().is_enabled());
    }

    #[test]
    fn seq_is_unique_across_recorders() {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        for _ in 0..4 {
            let rec = tel.recorder();
            rec.add("c", 1);
            rec.flush();
        }
        let mut seqs: Vec<u64> = sink.take().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 4);
    }

    #[test]
    fn jsonl_file_round_trip_and_append_resume() {
        let dir = std::env::temp_dir().join(format!(
            "dl2fence_telemetry_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");

        let tel = Telemetry::to_jsonl_file(&path).unwrap();
        let rec = tel.recorder();
        rec.record_us("lat", 42);
        rec.add("runs", 1);
        rec.flush();
        drop(rec);
        drop(tel);

        let first: Vec<Event> = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(|l| Event::parse(l).unwrap())
            .collect();
        assert_eq!(first.len(), 2);
        let max_seq = first.iter().map(|e| e.seq).max().unwrap();

        // Appending continues the sequence numbering.
        let tel = Telemetry::append_jsonl_file(&path).unwrap();
        let rec = tel.recorder();
        rec.add("runs", 1);
        rec.flush();
        drop(rec);
        drop(tel);

        let all: Vec<Event> = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(|l| Event::parse(l).unwrap())
            .collect();
        assert_eq!(all.len(), 3);
        assert!(all.iter().any(|e| e.seq > max_seq));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The disabled fast path must stay allocation- and clock-free: this is
    /// the design budget behind the "< 1% overhead with a no-op sink"
    /// guarantee. 10M disabled span+counter round trips in well under a
    /// second leaves the smoke campaign's handful of thousands invisible.
    #[test]
    fn disabled_path_is_effectively_free() {
        let rec = Recorder::default();
        let start = Instant::now();
        for i in 0..10_000_000u64 {
            let _s = rec.span("hot");
            rec.add("c", i & 1);
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed.as_millis() < 2_000,
            "disabled telemetry too slow: {elapsed:?} for 10M ops"
        );
    }
}
