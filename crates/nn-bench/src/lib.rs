//! # dl2fence-nn-bench — forward-path micro-benchmarks
//!
//! Fixtures and timing helpers for benchmarking the `tinycnn` inference
//! path at three tiers:
//!
//! 1. the **scalar seed kernels** ([`ScalarDetector`] — the original
//!    per-sample, caching forward path preserved as
//!    `Conv2d::forward_reference`),
//! 2. the **blocked im2col/GEMM f32 path** (`Sequential::predict`, bit-
//!    identical to tier 1 by the `crates/nn` parity suite), and
//! 3. the **fused int8 path** (`QuantizedModel::predict`).
//!
//! The Criterion benches (`benches/layers.rs`, `benches/batched.rs`) report
//! per-layer and whole-model numbers; the `nn_bench_guard` binary turns the
//! two headline claims into a CI gate: batched f32 is no slower than the
//! scalar seed kernels, and batched int8 reaches ≥4× their throughput at
//! batch 64.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};
use tinycnn::prelude::*;

/// Mesh side length the fixtures model (the paper's 8×8 NoC).
pub const MESH: usize = 8;

/// Kernel count of the paper's minimal detector.
pub const KERNELS: usize = 8;

/// Deterministic pseudo-random tensor in roughly `[-0.5, 0.5]` (xorshift).
pub fn pseudo_tensor(seed: u64, shape: &[usize]) -> Tensor {
    let len: usize = shape.iter().product();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xA5);
    let data = (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(data, shape)
}

/// Flattened feature count after the detector's conv + pool stack.
pub fn pooled_features(kernels: usize) -> usize {
    kernels * ((MESH - 2) / 2) * ((MESH - 2) / 2)
}

/// The detector CNN as the **scalar seed kernels** left it: one frame per
/// invocation, the naive scalar convolution (`forward_reference`) and the
/// grad-caching `forward` path of every other layer — exactly the cost
/// profile of inference before the GEMM rework.
pub struct ScalarDetector {
    conv: Conv2d,
    relu: Relu,
    pool: MaxPool2d,
    flatten: Flatten,
    dense: Dense,
    sigmoid: Sigmoid,
}

impl ScalarDetector {
    /// Builds the scalar stack. Seeds match [`detector_model`] so both paths
    /// hold bit-identical weights.
    pub fn new(kernels: usize, seed: u64) -> Self {
        ScalarDetector {
            conv: Conv2d::new(4, kernels, 3, Padding::Valid, seed),
            relu: Relu::new(),
            pool: MaxPool2d::new(2),
            flatten: Flatten::new(),
            dense: Dense::new(pooled_features(kernels), 1, seed + 1),
            sigmoid: Sigmoid::new(),
        }
    }

    /// Classifies one `[1, 4, MESH, MESH]` frame through the scalar path.
    pub fn forward_one(&mut self, frame: &Tensor) -> f32 {
        let x = self.conv.forward_reference(frame);
        let x = self.relu.forward(&x);
        let x = self.pool.forward(&x);
        let x = self.flatten.forward(&x);
        let x = self.dense.forward(&x);
        let x = self.sigmoid.forward(&x);
        x.data()[0]
    }

    /// Classifies every frame, one invocation each (the seed's batch story).
    pub fn forward_many(&mut self, frames: &[Tensor]) -> Vec<f32> {
        frames.iter().map(|f| self.forward_one(f)).collect()
    }
}

/// The same detector as a [`Sequential`] (blocked GEMM forward path).
/// Same seeds as [`ScalarDetector::new`] → bit-identical weights.
pub fn detector_model(kernels: usize, seed: u64) -> Sequential {
    Sequential::new()
        .push(Conv2d::new(4, kernels, 3, Padding::Valid, seed))
        .push(Relu::new())
        .push(MaxPool2d::new(2))
        .push(Flatten::new())
        .push(Dense::new(pooled_features(kernels), 1, seed + 1))
        .push(Sigmoid::new())
}

/// `batch` detector-shaped frames, each `[1, 4, MESH, MESH]`.
pub fn detector_frames(batch: usize, seed: u64) -> Vec<Tensor> {
    (0..batch)
        .map(|i| pseudo_tensor(seed + i as u64, &[1, 4, MESH, MESH]))
        .collect()
}

/// Stacks frames into one `[batch, 4, MESH, MESH]` model input.
pub fn stack_frames(frames: &[Tensor]) -> Tensor {
    let refs: Vec<&Tensor> = frames.iter().collect();
    Tensor::stack(&refs).reshape(&[frames.len(), 4, MESH, MESH])
}

/// Best (minimum) wall-clock duration of `runs` timed executions of `f`
/// after one warm-up pass — the min-of-N idiom the CI guards use to shed
/// scheduler noise.
pub fn min_time(runs: usize, mut f: impl FnMut()) -> Duration {
    f();
    (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("at least one timed run")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_gemm_fixtures_agree_bitwise() {
        let frames = detector_frames(5, 3);
        let mut scalar = ScalarDetector::new(KERNELS, 77);
        let mut model = detector_model(KERNELS, 77);
        let singles = scalar.forward_many(&frames);
        let batched = model.predict(&stack_frames(&frames));
        assert_eq!(batched.shape(), &[5, 1]);
        for (a, b) in singles.iter().zip(batched.data()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "guard fixtures diverged: scalar {a} vs batched {b}"
            );
        }
    }

    #[test]
    fn min_time_returns_a_measured_duration() {
        let mut n = 0u64;
        let d = min_time(2, || n += 1);
        assert!(n == 3, "warm-up + 2 timed runs expected, got {n}");
        assert!(d <= Duration::from_secs(1));
    }
}
