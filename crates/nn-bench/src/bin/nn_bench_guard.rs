//! CI throughput guard for the GEMM forward-path rework.
//!
//! Times three detector forward paths over the same 64-frame batch with the
//! min-of-2 idiom (shed scheduler noise, keep the best run) and enforces:
//!
//! 1. **No f32 regression** — the batched GEMM path must not be slower than
//!    the scalar seed kernels (5% wall-clock noise allowance).
//! 2. **Int8 speedup** — the batched fused int8 path must reach at least
//!    4× the scalar seed kernels' throughput.
//!
//! Exits non-zero with a diagnostic when either bound is violated.

use dl2fence_nn_bench::{
    detector_frames, detector_model, min_time, stack_frames, ScalarDetector, KERNELS,
};
use std::hint::black_box;
use std::process::ExitCode;
use tinycnn::QuantizedModel;

/// Batch size of the headline claim (matches `Dl2Fence::DETECT_BATCH`).
const BATCH: usize = 64;
/// Forward passes per timed run — enough work for stable milliseconds.
const ITERS: usize = 30;
/// Wall-clock noise allowance on the "no slower" f32 bound.
const F32_SLACK: f64 = 1.05;
/// Required int8 speedup over the scalar seed kernels.
const INT8_SPEEDUP: f64 = 4.0;

fn main() -> ExitCode {
    let frames = detector_frames(BATCH, 9);
    let stacked = stack_frames(&frames);
    let mut scalar = ScalarDetector::new(KERNELS, 21);
    let mut model = detector_model(KERNELS, 21);
    let mut quant = QuantizedModel::from_model(&model);

    // The comparison is only meaningful if both f32 paths compute the same
    // function: assert bitwise agreement before timing anything.
    let singles = scalar.forward_many(&frames);
    let batched = model.predict(&stacked);
    for (i, (a, b)) in singles.iter().zip(batched.data()).enumerate() {
        if a.to_bits() != b.to_bits() {
            eprintln!("guard fixtures diverged at frame {i}: scalar {a} vs batched {b}");
            return ExitCode::FAILURE;
        }
    }

    let t_scalar = min_time(2, || {
        for _ in 0..ITERS {
            black_box(scalar.forward_many(&frames));
        }
    });
    let t_f32 = min_time(2, || {
        for _ in 0..ITERS {
            black_box(model.predict(&stacked));
        }
    });
    let t_int8 = min_time(2, || {
        for _ in 0..ITERS {
            black_box(quant.predict(&stacked));
        }
    });

    let per_frame = |d: std::time::Duration| d.as_secs_f64() / (ITERS * BATCH) as f64 * 1e6;
    println!(
        "detector forward @ batch {BATCH}, min-of-2 ({ITERS} iters/run):\n\
         scalar seed kernels : {:>9.3} µs/frame\n\
         batched GEMM f32    : {:>9.3} µs/frame  ({:.2}x)\n\
         batched fused int8  : {:>9.3} µs/frame  ({:.2}x)",
        per_frame(t_scalar),
        per_frame(t_f32),
        t_scalar.as_secs_f64() / t_f32.as_secs_f64(),
        per_frame(t_int8),
        t_scalar.as_secs_f64() / t_int8.as_secs_f64(),
    );

    if t_f32.as_secs_f64() > t_scalar.as_secs_f64() * F32_SLACK {
        eprintln!(
            "FAIL: batched f32 is slower than the scalar seed kernels \
             ({:.3} ms vs {:.3} ms, allowance {F32_SLACK}x)",
            t_f32.as_secs_f64() * 1e3,
            t_scalar.as_secs_f64() * 1e3,
        );
        return ExitCode::FAILURE;
    }
    let speedup = t_scalar.as_secs_f64() / t_int8.as_secs_f64();
    if speedup < INT8_SPEEDUP {
        eprintln!("FAIL: batched int8 speedup {speedup:.2}x is below the required {INT8_SPEEDUP}x");
        return ExitCode::FAILURE;
    }
    println!("nn-bench guard passed: f32 no regression, int8 {speedup:.2}x >= {INT8_SPEEDUP}x");
    ExitCode::SUCCESS
}
