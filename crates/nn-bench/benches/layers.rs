//! Per-layer micro-benchmarks: the scalar seed kernel vs the blocked
//! im2col/GEMM f32 path vs the fused int8 path, at the detector's shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dl2fence_nn_bench::{detector_frames, pooled_features, pseudo_tensor, stack_frames, MESH};
use tinycnn::gemm::{self, ConvShape};
use tinycnn::prelude::*;
use tinycnn::quantize::quantize_slice_i8;

const KERNELS: usize = 8;

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv");
    group.sample_size(20);
    let (wq, wscale) = quantize_slice_i8(pseudo_tensor(3, &[KERNELS, 4, 3, 3]).data());
    let bias = vec![0.0f32; KERNELS];
    for &batch in &[1usize, 16, 64] {
        let x = stack_frames(&detector_frames(batch, 7));
        let conv = Conv2d::new(4, KERNELS, 3, Padding::Valid, 11);
        group.bench_with_input(BenchmarkId::new("scalar", batch), &batch, |b, _| {
            b.iter(|| conv.forward_reference(&x))
        });
        group.bench_with_input(BenchmarkId::new("gemm_f32", batch), &batch, |b, _| {
            b.iter(|| conv.infer(&x))
        });
        let shape = ConvShape {
            batch,
            in_channels: 4,
            height: MESH,
            width: MESH,
            out_channels: KERNELS,
            kernel: 3,
            pad: 0,
        };
        group.bench_with_input(BenchmarkId::new("int8", batch), &batch, |b, _| {
            b.iter(|| {
                // Dynamic activation quantization, as QuantizedModel does it.
                let (xq, xscale) = quantize_slice_i8(x.data());
                gemm::conv_forward_i8(&xq, xscale, &wq, wscale, &bias, true, &shape)
            })
        });
    }
    group.finish();
}

fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense");
    group.sample_size(20);
    let features = pooled_features(KERNELS);
    let (wq, wscale) = quantize_slice_i8(pseudo_tensor(5, &[1, features]).data());
    let bias = vec![0.1f32];
    for &batch in &[1usize, 16, 64] {
        let x = pseudo_tensor(batch as u64 + 100, &[batch, features]);
        let dense = Dense::new(features, 1, 9);
        group.bench_with_input(BenchmarkId::new("f32", batch), &batch, |b, _| {
            b.iter(|| dense.infer(&x))
        });
        group.bench_with_input(BenchmarkId::new("int8", batch), &batch, |b, _| {
            b.iter(|| {
                let (xq, xscale) = quantize_slice_i8(x.data());
                gemm::dense_forward_i8(&xq, xscale, &wq, wscale, &bias, false, batch, features, 1)
            })
        });
    }
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxpool");
    group.sample_size(20);
    for &batch in &[1usize, 64] {
        let x = pseudo_tensor(batch as u64, &[batch, KERNELS, MESH - 2, MESH - 2]);
        let mut pool = MaxPool2d::new(2);
        group.bench_with_input(BenchmarkId::new("forward", batch), &batch, |b, _| {
            b.iter(|| pool.forward(&x))
        });
        group.bench_with_input(BenchmarkId::new("infer", batch), &batch, |b, _| {
            b.iter(|| pool.infer(&x))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conv, bench_dense, bench_pool);
criterion_main!(benches);
