//! Whole-detector forward benchmarks: scalar seed kernels (one frame per
//! invocation) vs batched GEMM f32 vs batched fused int8, at batch 1/16/64.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dl2fence_nn_bench::{detector_frames, detector_model, stack_frames, ScalarDetector, KERNELS};
use tinycnn::QuantizedModel;

fn bench_detector_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("detector_forward");
    group.sample_size(20);
    for &batch in &[1usize, 16, 64] {
        let frames = detector_frames(batch, 40);
        let stacked = stack_frames(&frames);
        let mut scalar = ScalarDetector::new(KERNELS, 21);
        let mut model = detector_model(KERNELS, 21);
        let mut quant = QuantizedModel::from_model(&model);
        group.bench_with_input(BenchmarkId::new("scalar_seed", batch), &batch, |b, _| {
            b.iter(|| scalar.forward_many(&frames))
        });
        group.bench_with_input(BenchmarkId::new("f32_batched", batch), &batch, |b, _| {
            b.iter(|| model.predict(&stacked))
        });
        group.bench_with_input(BenchmarkId::new("int8_batched", batch), &batch, |b, _| {
            b.iter(|| quant.predict(&stacked))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detector_forward);
criterion_main!(benches);
