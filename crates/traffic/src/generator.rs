//! The traffic-generator abstraction and the Bernoulli injector used by the
//! synthetic patterns.

use crate::pattern::SyntheticPattern;
use noc_sim::flit::TrafficClass;
use noc_sim::{Network, NodeId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A source of packets that is polled once per simulated cycle.
///
/// Implementations enqueue whatever packets they decide to create this cycle
/// into the network's injection queues; the network then serializes and
/// routes them.
pub trait TrafficGenerator: Send {
    /// Called once per cycle *before* the network steps. `cycle` is the
    /// cycle about to be simulated.
    fn inject(&mut self, network: &mut Network, cycle: u64);

    /// Human-readable name for reports.
    fn name(&self) -> String;
}

/// Bernoulli packet injection for a [`SyntheticPattern`]: each node
/// independently creates a packet with probability `injection_rate` per
/// cycle, destined according to the pattern.
///
/// # Examples
///
/// ```
/// use noc_sim::{Network, NocConfig};
/// use noc_traffic::{BernoulliInjector, SyntheticPattern, TrafficGenerator};
///
/// let mut net = Network::new(NocConfig::mesh(4, 4));
/// let mut gen = BernoulliInjector::new(SyntheticPattern::Tornado, 0.1, 42);
/// for cycle in 0..100 {
///     gen.inject(&mut net, cycle);
///     net.step();
/// }
/// assert!(net.stats().packets_created > 0);
/// ```
#[derive(Debug, Clone)]
pub struct BernoulliInjector {
    pattern: SyntheticPattern,
    injection_rate: f64,
    rng: ChaCha8Rng,
}

impl BernoulliInjector {
    /// Creates an injector for `pattern` with a per-node, per-cycle packet
    /// injection probability of `injection_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `injection_rate` is not within `[0, 1]`.
    pub fn new(pattern: SyntheticPattern, injection_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&injection_rate),
            "injection rate must be in [0, 1], got {injection_rate}"
        );
        BernoulliInjector {
            pattern,
            injection_rate,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The synthetic pattern driving destination selection.
    pub fn pattern(&self) -> SyntheticPattern {
        self.pattern
    }

    /// The per-node per-cycle injection probability.
    pub fn injection_rate(&self) -> f64 {
        self.injection_rate
    }
}

impl TrafficGenerator for BernoulliInjector {
    fn inject(&mut self, network: &mut Network, cycle: u64) {
        let rows = network.config().rows;
        let cols = network.config().cols;
        let n = rows * cols;
        for node in 0..n {
            if self.rng.gen_bool(self.injection_rate) {
                let random = self.rng.gen_range(0..n);
                let src = NodeId(node);
                let dst = self.pattern.destination(src, rows, cols, random);
                if dst != src {
                    network.enqueue_with_class(src, dst, cycle, TrafficClass::Benign);
                }
            }
        }
    }

    fn name(&self) -> String {
        format!("{} @ {:.3}", self.pattern.name(), self.injection_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::NocConfig;

    #[test]
    fn zero_rate_injects_nothing() {
        let mut net = Network::new(NocConfig::mesh(4, 4));
        let mut gen = BernoulliInjector::new(SyntheticPattern::UniformRandom, 0.0, 1);
        for c in 0..200 {
            gen.inject(&mut net, c);
            net.step();
        }
        assert_eq!(net.stats().packets_created, 0);
    }

    #[test]
    fn injection_rate_controls_volume() {
        let mut low_net = Network::new(NocConfig::mesh(4, 4));
        let mut low = BernoulliInjector::new(SyntheticPattern::UniformRandom, 0.01, 1);
        let mut high_net = Network::new(NocConfig::mesh(4, 4));
        let mut high = BernoulliInjector::new(SyntheticPattern::UniformRandom, 0.2, 1);
        for c in 0..500 {
            low.inject(&mut low_net, c);
            low_net.step();
            high.inject(&mut high_net, c);
            high_net.step();
        }
        assert!(high_net.stats().packets_created > 5 * low_net.stats().packets_created);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let run = |seed| {
            let mut net = Network::new(NocConfig::mesh(4, 4));
            let mut gen = BernoulliInjector::new(SyntheticPattern::Shuffle, 0.1, seed);
            for c in 0..300 {
                gen.inject(&mut net, c);
                net.step();
            }
            (net.stats().packets_created, net.stats().packet_latency.sum)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    #[should_panic(expected = "injection rate")]
    fn invalid_rate_panics() {
        BernoulliInjector::new(SyntheticPattern::Tornado, 1.5, 0);
    }

    #[test]
    fn name_mentions_pattern() {
        let gen = BernoulliInjector::new(SyntheticPattern::BitComplement, 0.05, 0);
        assert!(gen.name().contains("Bit Complement"));
    }
}
