//! End-to-end attack scenarios: a benign workload overlaid with zero or more
//! DoS attacks (flooding, distributed or stealth), driving one [`Network`].

use crate::dos::DosAttack;
use crate::generator::{BernoulliInjector, TrafficGenerator};
use crate::parsec::{ParsecGenerator, ParsecWorkload};
use crate::pattern::SyntheticPattern;
use noc_sim::{Network, NocConfig, NodeId};
use serde::{Deserialize, Serialize};

/// The benign (non-attack) workload of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BenignWorkload {
    /// No benign traffic at all (attack-only runs, useful for debugging).
    Idle,
    /// A synthetic traffic pattern at a given injection rate.
    Synthetic(SyntheticPattern, f64),
    /// A PARSEC-like workload model.
    Parsec(ParsecWorkload),
}

impl BenignWorkload {
    /// The benchmark name used in tables.
    pub fn name(&self) -> String {
        match self {
            BenignWorkload::Idle => "Idle".to_string(),
            BenignWorkload::Synthetic(p, _) => p.name().to_string(),
            BenignWorkload::Parsec(w) => w.name().to_string(),
        }
    }

    fn into_generator(self, seed: u64) -> Option<Box<dyn TrafficGenerator>> {
        match self {
            BenignWorkload::Idle => None,
            BenignWorkload::Synthetic(p, rate) => {
                Some(Box::new(BernoulliInjector::new(p, rate, seed)))
            }
            BenignWorkload::Parsec(w) => Some(Box::new(ParsecGenerator::new(w, seed))),
        }
    }
}

/// Builder for [`AttackScenario`].
#[derive(Debug)]
pub struct AttackScenarioBuilder {
    config: NocConfig,
    benign: BenignWorkload,
    attacks: Vec<DosAttack>,
    seed: u64,
}

impl AttackScenarioBuilder {
    /// Sets the benign workload to a synthetic pattern at `injection_rate`.
    pub fn benign(mut self, pattern: SyntheticPattern, injection_rate: f64) -> Self {
        self.benign = BenignWorkload::Synthetic(pattern, injection_rate);
        self
    }

    /// Sets the benign workload to a PARSEC-like model.
    pub fn parsec(mut self, workload: ParsecWorkload) -> Self {
        self.benign = BenignWorkload::Parsec(workload);
        self
    }

    /// Sets the benign workload explicitly.
    pub fn workload(mut self, workload: BenignWorkload) -> Self {
        self.benign = workload;
        self
    }

    /// Adds a DoS attack overlay of any family ([`crate::FloodingAttack`],
    /// [`crate::DistributedAttack`], [`crate::StealthAttack`] or a
    /// pre-built [`DosAttack`]).
    pub fn attack(mut self, attack: impl Into<DosAttack>) -> Self {
        self.attacks.push(attack.into());
        self
    }

    /// Sets the master seed; benign and attack generators derive their own
    /// sub-seeds from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the scenario (constructing the network and all generators).
    pub fn build(self) -> AttackScenario {
        let network = Network::new(self.config);
        let mut generators: Vec<Box<dyn TrafficGenerator>> = Vec::new();
        if let Some(g) = self.benign.into_generator(self.seed) {
            generators.push(g);
        }
        let mut ground_truth_attacks = Vec::new();
        for (i, attack) in self.attacks.into_iter().enumerate() {
            let seeded = attack.with_seed(self.seed.wrapping_add(1 + i as u64));
            ground_truth_attacks.push(seeded.clone());
            generators.push(Box::new(seeded) as Box<dyn TrafficGenerator>);
        }
        AttackScenario {
            benign: self.benign,
            network,
            generators,
            attacks: ground_truth_attacks,
        }
    }
}

/// A runnable scenario: one network plus its benign and malicious traffic
/// generators.
///
/// # Examples
///
/// ```
/// use noc_sim::{NocConfig, NodeId};
/// use noc_traffic::{AttackScenario, FloodingAttack, SyntheticPattern};
///
/// let mut scenario = AttackScenario::builder(NocConfig::mesh(4, 4))
///     .benign(SyntheticPattern::Neighbor, 0.02)
///     .attack(FloodingAttack::new(vec![NodeId(15)], NodeId(0), 0.6))
///     .build();
/// scenario.run(500);
/// assert!(scenario.network().stats().packets_received > 0);
/// assert!(scenario.is_under_attack());
/// ```
pub struct AttackScenario {
    benign: BenignWorkload,
    network: Network,
    generators: Vec<Box<dyn TrafficGenerator>>,
    attacks: Vec<DosAttack>,
}

impl AttackScenario {
    /// Starts building a scenario for the given NoC configuration.
    pub fn builder(config: NocConfig) -> AttackScenarioBuilder {
        AttackScenarioBuilder {
            config,
            benign: BenignWorkload::Idle,
            attacks: Vec::new(),
            seed: 0,
        }
    }

    /// The benign workload of this scenario.
    pub fn benign_workload(&self) -> BenignWorkload {
        self.benign
    }

    /// The simulated network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the simulated network (e.g. to reset BOC counters
    /// between sampling windows).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// The configured DoS attacks (ground truth).
    pub fn attacks(&self) -> &[DosAttack] {
        &self.attacks
    }

    /// Whether at least one attack with a non-zero FIR is configured.
    pub fn is_under_attack(&self) -> bool {
        self.attacks.iter().any(|a| a.fir() > 0.0)
    }

    /// The ground-truth attacker set.
    pub fn attacker_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .attacks
            .iter()
            .flat_map(|a| a.attackers().to_vec())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Every `(attacker, target victim)` pair across all configured attacks.
    pub fn attack_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let mut out: Vec<(NodeId, NodeId)> = self
            .attacks
            .iter()
            .flat_map(|a| {
                a.attackers()
                    .iter()
                    .map(|&att| (att, a.victim()))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The ground-truth victim set (target victims plus routing-path
    /// victims across all attacks).
    pub fn victim_nodes(&self) -> Vec<NodeId> {
        let topology = self.network.topology();
        let mut out: Vec<NodeId> = self
            .attacks
            .iter()
            .flat_map(|a| a.routing_path_victims(topology))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Advances the scenario by one cycle (inject, then step the network).
    pub fn step(&mut self) {
        let cycle = self.network.cycle();
        for g in &mut self.generators {
            g.inject(&mut self.network, cycle);
        }
        self.network.step();
    }

    /// Runs the scenario for `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }
}

impl std::fmt::Debug for AttackScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AttackScenario({:?}, {} attack(s), cycle {})",
            self.benign,
            self.attacks.len(),
            self.network.cycle()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddos::DistributedAttack;
    use crate::fdos::FloodingAttack;
    use crate::stealth::StealthAttack;

    #[test]
    fn mixed_attack_families_coexist() {
        let s = AttackScenario::builder(NocConfig::mesh(4, 4))
            .attack(FloodingAttack::new(vec![NodeId(3)], NodeId(0), 0.8))
            .attack(DistributedAttack::new(
                vec![NodeId(12), NodeId(15)],
                NodeId(0),
                0.6,
            ))
            .attack(StealthAttack::new(vec![NodeId(7)], NodeId(0), 0.4))
            .build();
        assert!(s.is_under_attack());
        assert_eq!(s.attacks().len(), 3);
        assert_eq!(
            s.attacker_nodes(),
            vec![NodeId(3), NodeId(7), NodeId(12), NodeId(15)]
        );
        assert!(s.attack_pairs().contains(&(NodeId(12), NodeId(0))));
    }

    #[test]
    fn torus_scenario_uses_wrap_aware_ground_truth() {
        let mut s = AttackScenario::builder(NocConfig::torus(4, 4))
            .attack(FloodingAttack::new(vec![NodeId(3)], NodeId(0), 0.8))
            .seed(7)
            .build();
        // 3 -> 0 is one wrap hop on the torus: the only victim is the target.
        assert_eq!(s.victim_nodes(), vec![NodeId(0)]);
        s.run(500);
        assert!(s.network().stats().malicious_packets_received > 0);
    }

    #[test]
    fn benign_only_scenario_has_no_attack() {
        let mut s = AttackScenario::builder(NocConfig::mesh(4, 4))
            .benign(SyntheticPattern::UniformRandom, 0.02)
            .seed(3)
            .build();
        s.run(300);
        assert!(!s.is_under_attack());
        assert!(s.attacker_nodes().is_empty());
        assert!(s.victim_nodes().is_empty());
        assert_eq!(s.network().stats().malicious_packets_received, 0);
        assert!(s.network().stats().packets_received > 0);
    }

    #[test]
    fn attack_scenario_reports_ground_truth() {
        let s = AttackScenario::builder(NocConfig::mesh(4, 4))
            .benign(SyntheticPattern::Tornado, 0.01)
            .attack(FloodingAttack::new(vec![NodeId(3)], NodeId(0), 0.8))
            .build();
        assert!(s.is_under_attack());
        assert_eq!(s.attacker_nodes(), vec![NodeId(3)]);
        assert_eq!(s.victim_nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn two_attacker_scenario_merges_ground_truth() {
        let s = AttackScenario::builder(NocConfig::mesh(4, 4))
            .attack(FloodingAttack::new(vec![NodeId(3)], NodeId(0), 0.8))
            .attack(FloodingAttack::new(vec![NodeId(12)], NodeId(0), 0.8))
            .build();
        let attackers = s.attacker_nodes();
        assert_eq!(attackers, vec![NodeId(3), NodeId(12)]);
        let victims = s.victim_nodes();
        assert!(victims.contains(&NodeId(0)));
        assert!(!victims.contains(&NodeId(3)));
        assert!(!victims.contains(&NodeId(12)));
    }

    #[test]
    fn attack_slows_benign_traffic() {
        let run = |with_attack: bool| {
            let mut b = AttackScenario::builder(NocConfig::mesh(8, 8))
                .benign(SyntheticPattern::UniformRandom, 0.02)
                .seed(11);
            if with_attack {
                b = b.attack(FloodingAttack::new(vec![NodeId(56)], NodeId(7), 0.9));
            }
            let mut s = b.build();
            s.run(3_000);
            s.network().stats().packet_latency.mean()
        };
        let clean = run(false);
        let attacked = run(true);
        assert!(
            attacked > clean,
            "attack latency {attacked} should exceed clean latency {clean}"
        );
    }

    #[test]
    fn parsec_scenario_runs() {
        let mut s = AttackScenario::builder(NocConfig::mesh(8, 8))
            .parsec(ParsecWorkload::X264)
            .attack(FloodingAttack::new(vec![NodeId(63)], NodeId(9), 0.8))
            .seed(4)
            .build();
        s.run(2_000);
        assert!(s.network().stats().malicious_packets_received > 0);
        assert_eq!(s.benign_workload().name(), "X264");
    }
}
