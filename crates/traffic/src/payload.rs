//! The payload-extension flavour of flooding DoS.
//!
//! The paper's related work (Chaves et al.) identifies two FDoS
//! implementations: raising the packet injection rate (the main model,
//! [`crate::FloodingAttack`]) and *extending the packet payload length* so
//! every malicious packet occupies buffers and links for more cycles. This
//! module implements the second flavour as an extension, so the framework
//! can be exercised against both.

use crate::generator::TrafficGenerator;
use noc_sim::flit::TrafficClass;
use noc_sim::{Network, NodeId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A flooding attack that sends over-long packets at a (possibly modest)
/// injection rate.
///
/// # Examples
///
/// ```
/// use noc_sim::NodeId;
/// use noc_traffic::payload::PayloadFloodingAttack;
///
/// let attack = PayloadFloodingAttack::new(vec![NodeId(15)], NodeId(0), 0.3, 20);
/// assert_eq!(attack.payload_flits(), 20);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PayloadFloodingAttack {
    attackers: Vec<NodeId>,
    victim: NodeId,
    rate: f64,
    payload_flits: usize,
    seed: u64,
    #[serde(skip)]
    rng: Option<ChaCha8Rng>,
}

impl PayloadFloodingAttack {
    /// Creates a payload-extension attack: each attacker injects a
    /// `payload_flits`-flit packet towards `victim` with probability `rate`
    /// per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`, `payload_flits` is zero,
    /// `attackers` is empty, or the victim is listed as an attacker.
    pub fn new(attackers: Vec<NodeId>, victim: NodeId, rate: f64, payload_flits: usize) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        assert!(payload_flits > 0, "payload must contain at least one flit");
        assert!(!attackers.is_empty(), "at least one attacker is required");
        assert!(
            !attackers.contains(&victim),
            "the victim cannot also be an attacker"
        );
        PayloadFloodingAttack {
            attackers,
            victim,
            rate,
            payload_flits,
            seed: 0xFA7,
            rng: None,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.rng = None;
        self
    }

    /// The malicious nodes.
    pub fn attackers(&self) -> &[NodeId] {
        &self.attackers
    }

    /// The target victim.
    pub fn victim(&self) -> NodeId {
        self.victim
    }

    /// The per-attacker per-cycle injection probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The length of each malicious packet in flits.
    pub fn payload_flits(&self) -> usize {
        self.payload_flits
    }

    fn rng(&mut self) -> &mut ChaCha8Rng {
        if self.rng.is_none() {
            self.rng = Some(ChaCha8Rng::seed_from_u64(self.seed));
        }
        self.rng.as_mut().expect("just initialised")
    }
}

impl TrafficGenerator for PayloadFloodingAttack {
    fn inject(&mut self, network: &mut Network, cycle: u64) {
        let victim = self.victim;
        let rate = self.rate;
        let payload = self.payload_flits;
        let attackers = self.attackers.clone();
        for attacker in attackers {
            let fire = rate >= 1.0 || self.rng().gen_bool(rate);
            if fire {
                network.enqueue_with_length(
                    attacker,
                    victim,
                    cycle,
                    TrafficClass::Malicious,
                    payload,
                );
            }
        }
    }

    fn name(&self) -> String {
        format!(
            "Payload FDoS {} attacker(s) -> {} @ rate {:.2}, {} flits/packet",
            self.attackers.len(),
            self.victim,
            self.rate,
            self.payload_flits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::NocConfig;

    fn run_with_payload(payload: usize, cycles: u64) -> f64 {
        let mut net = Network::new(NocConfig::mesh(8, 8));
        let mut attack =
            PayloadFloodingAttack::new(vec![NodeId(7)], NodeId(0), 0.3, payload).with_seed(4);
        // A light benign stream shares the victim's row.
        for c in 0..cycles {
            if c % 20 == 0 {
                net.enqueue_packet(NodeId(5), NodeId(1), c);
            }
            attack.inject(&mut net, c);
            net.step();
        }
        net.stats().packet_latency.mean()
    }

    #[test]
    fn longer_payloads_increase_latency() {
        let short = run_with_payload(2, 3_000);
        let long = run_with_payload(24, 3_000);
        assert!(
            long > short,
            "24-flit payload latency {long} should exceed 2-flit latency {short}"
        );
    }

    #[test]
    fn malicious_flit_volume_scales_with_payload() {
        let mut net = Network::new(NocConfig::mesh(4, 4));
        let mut attack = PayloadFloodingAttack::new(vec![NodeId(3)], NodeId(0), 1.0, 9);
        for c in 0..50 {
            attack.inject(&mut net, c);
            net.step();
        }
        net.run(3_000);
        let stats = net.stats();
        assert_eq!(stats.flits_injected % 9, 0);
        assert!(stats.malicious_packets_received > 0);
    }

    #[test]
    fn generator_name_mentions_payload() {
        let attack = PayloadFloodingAttack::new(vec![NodeId(1)], NodeId(0), 0.5, 12);
        assert!(attack.name().contains("12 flits"));
    }

    #[test]
    #[should_panic(expected = "payload")]
    fn zero_payload_panics() {
        PayloadFloodingAttack::new(vec![NodeId(1)], NodeId(0), 0.5, 0);
    }
}
