//! # noc-traffic — workload and attack models for the DL2Fence reproduction
//!
//! This crate provides everything that *injects packets* into the
//! [`noc_sim`] substrate:
//!
//! * the six **synthetic traffic patterns** (STP) used in the paper's
//!   evaluation — uniform random, tornado, shuffle, neighbor, bit rotation
//!   and bit complement ([`SyntheticPattern`]),
//! * **PARSEC-like workload models** ([`ParsecWorkload`]) — phase-structured
//!   generators that reproduce the low-communication-density,
//!   computation-heavy Region-of-Interest behaviour of blackscholes,
//!   bodytrack and x264 (a documented substitution for gem5 full-system
//!   traces),
//! * the **refined flooding DoS model** ([`FloodingAttack`]) with a finely
//!   adjustable Flooding Injection Rate (FIR) that overlays protocol-legal
//!   malicious packets on top of benign traffic,
//! * two further **attack families** behind the same [`DosAttack`] surface:
//!   coordinated multi-source **distributed DoS** ([`DistributedAttack`],
//!   after Weerasena et al. 2025) and **stealthy duty-cycle / ramp-up**
//!   flooding that stays under the FIR threshold ([`StealthAttack`]), and
//! * [`AttackScenario`], which combines a benign workload with zero or more
//!   attackers and drives a simulation on any [`noc_sim::Topology`].
//!
//! ## Quick example
//!
//! ```
//! use noc_sim::{NocConfig, NodeId};
//! use noc_traffic::{AttackScenario, FloodingAttack, SyntheticPattern};
//!
//! let mut scenario = AttackScenario::builder(NocConfig::mesh(8, 8))
//!     .benign(SyntheticPattern::UniformRandom, 0.02)
//!     .attack(FloodingAttack::new(vec![NodeId(63)], NodeId(0), 0.8))
//!     .seed(7)
//!     .build();
//! scenario.run(1_000);
//! assert!(scenario.network().stats().malicious_packets_received > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ddos;
pub mod dos;
pub mod fdos;
pub mod generator;
pub mod parsec;
pub mod pattern;
pub mod payload;
pub mod scenario;
pub mod stealth;

pub use ddos::DistributedAttack;
pub use dos::{AttackKind, DosAttack};
pub use fdos::{routing_path_victims, FloodingAttack};
pub use generator::{BernoulliInjector, TrafficGenerator};
pub use parsec::{ParsecPhase, ParsecWorkload};
pub use pattern::SyntheticPattern;
pub use payload::PayloadFloodingAttack;
pub use scenario::{AttackScenario, AttackScenarioBuilder, BenignWorkload};
pub use stealth::StealthAttack;
