//! The six synthetic traffic patterns of the paper's evaluation.
//!
//! Destination functions follow the standard definitions (Dally & Towles,
//! *Principles and Practices of Interconnection Networks*), the same ones
//! gem5's Garnet synthetic traffic driver implements.

use noc_sim::{Coord, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A synthetic traffic pattern (STP) benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyntheticPattern {
    /// Every packet picks a uniformly random destination.
    UniformRandom,
    /// `(x, y) → (cols−1−x, rows−1−y)` shifted by half the mesh: each node
    /// sends to the node half-way across its row (classic k-ary tornado).
    Tornado,
    /// Bit shuffle of the node id: rotate the id's bits left by one.
    Shuffle,
    /// Each node sends to its East neighbour (wrapping at the row end).
    Neighbor,
    /// Bit rotation of the node id: rotate the id's bits right by one.
    BitRotation,
    /// Bit complement of the node id.
    BitComplement,
}

impl SyntheticPattern {
    /// All six patterns in the order the paper's tables list them.
    pub const ALL: [SyntheticPattern; 6] = [
        SyntheticPattern::UniformRandom,
        SyntheticPattern::Tornado,
        SyntheticPattern::Shuffle,
        SyntheticPattern::Neighbor,
        SyntheticPattern::BitRotation,
        SyntheticPattern::BitComplement,
    ];

    /// The human-readable benchmark name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            SyntheticPattern::UniformRandom => "Uniform Random",
            SyntheticPattern::Tornado => "Tornado",
            SyntheticPattern::Shuffle => "Shuffle",
            SyntheticPattern::Neighbor => "Neighbor",
            SyntheticPattern::BitRotation => "Bit Rotation",
            SyntheticPattern::BitComplement => "Bit Complement",
        }
    }

    /// Whether this pattern needs a random source (only
    /// [`SyntheticPattern::UniformRandom`] does); all others are
    /// deterministic functions of the source id.
    pub fn is_random(&self) -> bool {
        matches!(self, SyntheticPattern::UniformRandom)
    }

    /// The destination node for a packet originating at `src` on a
    /// `rows × cols` mesh. For [`SyntheticPattern::UniformRandom`] the
    /// caller supplies `random` (a value in `[0, node_count)`) drawn from its
    /// own RNG; deterministic patterns ignore it.
    ///
    /// # Panics
    ///
    /// Panics if `src` is outside the mesh.
    pub fn destination(&self, src: NodeId, rows: usize, cols: usize, random: usize) -> NodeId {
        let n = rows * cols;
        assert!(src.0 < n, "source {src} outside {rows}x{cols} mesh");
        let bits = usize::BITS - (n - 1).leading_zeros();
        let mask = (1usize << bits) - 1;
        let dst = match self {
            SyntheticPattern::UniformRandom => random % n,
            SyntheticPattern::Tornado => {
                let c = Coord::from_id(src, cols);
                let dx = (c.x + (cols / 2).max(1) - 1) % cols;
                Coord::new(dx, c.y).to_id(cols).0
            }
            SyntheticPattern::Neighbor => {
                let c = Coord::from_id(src, cols);
                Coord::new((c.x + 1) % cols, c.y).to_id(cols).0
            }
            SyntheticPattern::Shuffle => {
                // Rotate left by one within the id bit-width.
                let v = src.0;
                ((v << 1) | (v >> (bits - 1))) & mask
            }
            SyntheticPattern::BitRotation => {
                // Rotate right by one within the id bit-width.
                let v = src.0;
                ((v >> 1) | ((v & 1) << (bits - 1))) & mask
            }
            SyntheticPattern::BitComplement => (!src.0) & mask,
        };
        // Clamp to the mesh for non-power-of-two node counts.
        NodeId(dst % n)
    }
}

impl fmt::Display for SyntheticPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_patterns_have_unique_names() {
        let names: std::collections::HashSet<_> =
            SyntheticPattern::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn bit_complement_on_16x16() {
        // 256 nodes => 8 bits; complement of 0 is 255.
        let d = SyntheticPattern::BitComplement.destination(NodeId(0), 16, 16, 0);
        assert_eq!(d, NodeId(255));
        let d = SyntheticPattern::BitComplement.destination(NodeId(255), 16, 16, 0);
        assert_eq!(d, NodeId(0));
    }

    #[test]
    fn neighbor_wraps_at_row_end() {
        let d = SyntheticPattern::Neighbor.destination(NodeId(3), 4, 4, 0);
        assert_eq!(d, NodeId(0)); // node 3 is the row-0 east edge, wraps to 0
        let d = SyntheticPattern::Neighbor.destination(NodeId(0), 4, 4, 0);
        assert_eq!(d, NodeId(1));
    }

    #[test]
    fn tornado_moves_half_the_row() {
        // 8 columns: node 0 sends 3 columns east (k/2 - 1).
        let d = SyntheticPattern::Tornado.destination(NodeId(0), 8, 8, 0);
        assert_eq!(d, NodeId(3));
    }

    #[test]
    fn shuffle_and_rotation_are_inverses() {
        for id in 0..64usize {
            let s = SyntheticPattern::Shuffle.destination(NodeId(id), 8, 8, 0);
            let back = SyntheticPattern::BitRotation.destination(s, 8, 8, 0);
            assert_eq!(back, NodeId(id));
        }
    }

    #[test]
    fn uniform_random_uses_supplied_value() {
        let d = SyntheticPattern::UniformRandom.destination(NodeId(0), 4, 4, 11);
        assert_eq!(d, NodeId(11));
        let d = SyntheticPattern::UniformRandom.destination(NodeId(0), 4, 4, 17);
        assert_eq!(d, NodeId(1)); // 17 % 16
    }

    proptest! {
        #[test]
        fn destinations_always_inside_mesh(
            src in 0usize..256,
            random in 0usize..10_000,
            pattern_idx in 0usize..6
        ) {
            let p = SyntheticPattern::ALL[pattern_idx];
            let d = p.destination(NodeId(src), 16, 16, random);
            prop_assert!(d.0 < 256);
        }

        #[test]
        fn deterministic_patterns_ignore_random(
            src in 0usize..64,
            r1 in 0usize..1000,
            r2 in 0usize..1000,
            pattern_idx in 1usize..6
        ) {
            let p = SyntheticPattern::ALL[pattern_idx];
            prop_assert_eq!(
                p.destination(NodeId(src), 8, 8, r1),
                p.destination(NodeId(src), 8, 8, r2)
            );
        }
    }
}
