//! Stealthy duty-cycle / ramp-up flooding that stays under the FIR
//! threshold.
//!
//! A threshold detector watching the per-source injection rate is blind to
//! two evasions the refined-DoS literature describes:
//!
//! * **ramp-up** — the attacker grows its rate slowly from zero, so any
//!   detector calibrated on a step change sees only a drifting baseline;
//! * **duty cycling** — the attacker pulses (on for `duty_on` cycles out of
//!   every `duty_period`), keeping its *average* rate at a fraction of the
//!   peak while still causing periodic congestion at the victim.
//!
//! [`StealthAttack`] composes both: the effective injection probability at
//! cycle `c` is `fir * min(1, c / ramp_cycles)` inside the duty window and
//! zero outside it. With the defaults (50% duty) the long-run average rate
//! is half the configured peak FIR.

use crate::generator::TrafficGenerator;
use noc_sim::flit::TrafficClass;
use noc_sim::{Network, NodeId, Topology};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A stealthy flooding attack: linear ramp-up to a peak FIR, pulsed by a
/// duty cycle.
///
/// # Examples
///
/// ```
/// use noc_sim::NodeId;
/// use noc_traffic::StealthAttack;
///
/// let attack = StealthAttack::new(vec![NodeId(15)], NodeId(0), 0.8)
///     .with_ramp(500)
///     .with_duty(100, 40);
/// // Peak FIR 0.8, but 40/100 duty ⇒ long-run average 0.32.
/// assert!((attack.average_fir() - 0.32).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StealthAttack {
    attackers: Vec<NodeId>,
    victim: NodeId,
    fir: f64,
    ramp_cycles: u64,
    duty_period: u64,
    duty_on: u64,
    seed: u64,
    #[serde(skip)]
    rng: Option<ChaCha8Rng>,
}

impl StealthAttack {
    /// Creates a stealth attack by `attackers` against `victim` with peak
    /// flooding injection rate `fir`, a 1000-cycle ramp and a 100-on /
    /// 200-cycle duty window.
    ///
    /// # Panics
    ///
    /// Panics if `fir` is outside `[0, 1]`, `attackers` is empty, or the
    /// victim is listed as an attacker.
    pub fn new(attackers: Vec<NodeId>, victim: NodeId, fir: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fir),
            "FIR must be in [0, 1], got {fir}"
        );
        assert!(!attackers.is_empty(), "at least one attacker is required");
        assert!(
            !attackers.contains(&victim),
            "the victim cannot also be an attacker"
        );
        StealthAttack {
            attackers,
            victim,
            fir,
            ramp_cycles: 1_000,
            duty_period: 200,
            duty_on: 100,
            seed: 0x57EA,
            rng: None,
        }
    }

    /// Sets the ramp-up length in cycles (0 disables the ramp).
    pub fn with_ramp(mut self, ramp_cycles: u64) -> Self {
        self.ramp_cycles = ramp_cycles;
        self
    }

    /// Sets the duty cycle: active for `on` cycles out of every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `on > period`.
    pub fn with_duty(mut self, period: u64, on: u64) -> Self {
        assert!(period > 0, "duty period must be non-zero");
        assert!(on <= period, "duty on-time cannot exceed the period");
        self.duty_period = period;
        self.duty_on = on;
        self
    }

    /// Overrides the RNG seed used for the Bernoulli injection decisions.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.rng = None;
        self
    }

    /// The malicious nodes.
    pub fn attackers(&self) -> &[NodeId] {
        &self.attackers
    }

    /// The target victim node.
    pub fn victim(&self) -> NodeId {
        self.victim
    }

    /// The peak flooding injection rate in `[0, 1]`.
    pub fn fir(&self) -> f64 {
        self.fir
    }

    /// The long-run average injection rate once the ramp has completed:
    /// peak FIR scaled by the duty cycle.
    pub fn average_fir(&self) -> f64 {
        self.fir * self.duty_on as f64 / self.duty_period as f64
    }

    /// The effective per-attacker injection probability at `cycle`.
    pub fn effective_fir(&self, cycle: u64) -> f64 {
        if cycle % self.duty_period >= self.duty_on {
            return 0.0;
        }
        let ramp = if self.ramp_cycles == 0 {
            1.0
        } else {
            (cycle as f64 / self.ramp_cycles as f64).min(1.0)
        };
        self.fir * ramp
    }

    /// The ground-truth victim set: target plus routing-path victims.
    pub fn routing_path_victims(&self, topology: &Topology) -> Vec<NodeId> {
        crate::fdos::routing_path_victims(&self.attackers, self.victim, topology)
    }

    fn rng(&mut self) -> &mut ChaCha8Rng {
        if self.rng.is_none() {
            self.rng = Some(ChaCha8Rng::seed_from_u64(self.seed));
        }
        self.rng.as_mut().expect("just initialised")
    }
}

impl TrafficGenerator for StealthAttack {
    fn inject(&mut self, network: &mut Network, cycle: u64) {
        let eff = self.effective_fir(cycle);
        if eff <= 0.0 {
            return;
        }
        let victim = self.victim;
        let attackers = self.attackers.clone();
        for attacker in attackers {
            let fire = eff >= 1.0 || self.rng().gen_bool(eff);
            if fire {
                network.enqueue_with_class(attacker, victim, cycle, TrafficClass::Malicious);
            }
        }
    }

    fn name(&self) -> String {
        format!(
            "Stealth {} attacker(s) -> {} @ peak FIR {:.2}, ramp {}, duty {}/{}",
            self.attackers.len(),
            self.victim,
            self.fir,
            self.ramp_cycles,
            self.duty_on,
            self.duty_period
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::NocConfig;

    #[test]
    fn effective_fir_ramps_then_pulses() {
        let a = StealthAttack::new(vec![NodeId(15)], NodeId(0), 0.8)
            .with_ramp(1_000)
            .with_duty(200, 100);
        assert_eq!(a.effective_fir(0), 0.0); // ramp starts at zero
        assert!((a.effective_fir(50) - 0.8 * 0.05).abs() < 1e-9);
        assert_eq!(a.effective_fir(150), 0.0); // duty off-phase
        assert!((a.effective_fir(2_000) - 0.8).abs() < 1e-9); // fully ramped, on-phase
        assert_eq!(a.effective_fir(2_150), 0.0);
    }

    #[test]
    fn average_rate_stays_under_peak() {
        let cycles = 40_000u64;
        let mut net = Network::new(NocConfig::mesh(8, 8));
        let mut attack = StealthAttack::new(vec![NodeId(63)], NodeId(0), 0.8)
            .with_ramp(1_000)
            .with_duty(200, 100)
            .with_seed(3);
        for c in 0..cycles {
            attack.inject(&mut net, c);
        }
        let rate = net.stats().packets_created as f64 / cycles as f64;
        // Long-run average ≈ 0.4 (half the peak), clearly under FIR 0.8.
        assert!(rate < 0.45, "stealth rate {rate} should stay under 0.45");
        assert!(rate > 0.3, "stealth rate {rate} should still flood");
    }

    #[test]
    fn zero_ramp_starts_at_peak() {
        let a = StealthAttack::new(vec![NodeId(1)], NodeId(0), 0.5).with_ramp(0);
        assert_eq!(a.effective_fir(0), 0.5);
    }

    #[test]
    fn packets_are_labelled_malicious() {
        let mut net = Network::new(NocConfig::mesh(4, 4));
        let mut attack = StealthAttack::new(vec![NodeId(3)], NodeId(0), 1.0)
            .with_ramp(0)
            .with_duty(10, 10);
        for c in 0..200 {
            attack.inject(&mut net, c);
            net.step();
        }
        net.run(1_000);
        assert!(net.stats().malicious_packets_received > 100);
    }

    #[test]
    #[should_panic(expected = "on-time cannot exceed")]
    fn invalid_duty_panics() {
        StealthAttack::new(vec![NodeId(1)], NodeId(0), 0.5).with_duty(10, 11);
    }
}
