//! PARSEC-like workload models.
//!
//! The paper runs blackscholes, bodytrack and x264 in gem5 full-system mode
//! on an 8×8 NoC. Full-system traces are not available in this environment,
//! so these generators reproduce the *traffic-relevant* properties the paper
//! relies on (see DESIGN.md for the substitution rationale):
//!
//! * **Low communication density** during the Region of Interest (ROI) —
//!   PARSEC applications compute far more than they communicate, which is
//!   exactly why the paper finds flooding traffic "more prominent" and easier
//!   to localize on PARSEC than on traffic-heavy synthetic patterns.
//! * **Phase structure** — alternating compute phases (almost no packets)
//!   and communication bursts (synchronization / data exchange).
//! * **Hot-spot bias** — a fraction of traffic targets a small set of shared
//!   nodes modelling memory controllers / shared caches at the mesh corners.

use crate::generator::TrafficGenerator;
use noc_sim::flit::TrafficClass;
use noc_sim::{Network, NodeId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which phase of the workload a node is currently executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParsecPhase {
    /// Computation-dominated phase: essentially no packet injection.
    Compute,
    /// Communication burst: synchronization and data exchange packets.
    Communicate,
}

/// The three PARSEC benchmarks the paper evaluates, modelled as
/// phase-structured synthetic generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParsecWorkload {
    /// Embarrassingly parallel option pricing: long compute phases, short and
    /// sparse communication bursts, strong hot-spot bias (input distribution
    /// from a single node).
    Blackscholes,
    /// Body tracking: moderate communication, frame-synchronised bursts.
    Bodytrack,
    /// Video encoding: pipeline parallelism with neighbour-biased exchange of
    /// reference frames and moderate bursts.
    X264,
}

/// Traffic parameters of one workload model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParsecProfile {
    /// Injection probability per node per cycle during a communication burst.
    pub burst_injection_rate: f64,
    /// Injection probability per node per cycle during compute phases.
    pub compute_injection_rate: f64,
    /// Length of a compute phase in cycles.
    pub compute_phase_len: u64,
    /// Length of a communication burst in cycles.
    pub burst_phase_len: u64,
    /// Fraction of packets that target a shared hot-spot node
    /// (memory-controller model) instead of a random peer.
    pub hotspot_fraction: f64,
}

impl ParsecWorkload {
    /// The three workloads in the order the paper's tables list them.
    pub const ALL: [ParsecWorkload; 3] = [
        ParsecWorkload::Blackscholes,
        ParsecWorkload::Bodytrack,
        ParsecWorkload::X264,
    ];

    /// Human-readable benchmark name.
    pub fn name(&self) -> &'static str {
        match self {
            ParsecWorkload::Blackscholes => "Blackscholes",
            ParsecWorkload::Bodytrack => "Bodytrack",
            ParsecWorkload::X264 => "X264",
        }
    }

    /// The traffic profile of this workload.
    ///
    /// Rates are chosen well below the synthetic-pattern rates so that, as in
    /// the paper, the ROI traffic density is low and flooding stands out.
    pub fn profile(&self) -> ParsecProfile {
        match self {
            ParsecWorkload::Blackscholes => ParsecProfile {
                burst_injection_rate: 0.015,
                compute_injection_rate: 0.001,
                compute_phase_len: 400,
                burst_phase_len: 60,
                hotspot_fraction: 0.5,
            },
            ParsecWorkload::Bodytrack => ParsecProfile {
                burst_injection_rate: 0.03,
                compute_injection_rate: 0.002,
                compute_phase_len: 250,
                burst_phase_len: 100,
                hotspot_fraction: 0.35,
            },
            ParsecWorkload::X264 => ParsecProfile {
                burst_injection_rate: 0.025,
                compute_injection_rate: 0.003,
                compute_phase_len: 300,
                burst_phase_len: 120,
                hotspot_fraction: 0.25,
            },
        }
    }
}

impl fmt::Display for ParsecWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A phase-structured traffic generator modelling one PARSEC workload.
#[derive(Debug, Clone)]
pub struct ParsecGenerator {
    workload: ParsecWorkload,
    profile: ParsecProfile,
    rng: ChaCha8Rng,
}

impl ParsecGenerator {
    /// Creates a generator for `workload` seeded with `seed`.
    pub fn new(workload: ParsecWorkload, seed: u64) -> Self {
        ParsecGenerator {
            workload,
            profile: workload.profile(),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The workload this generator models.
    pub fn workload(&self) -> ParsecWorkload {
        self.workload
    }

    /// The phase active at `cycle`.
    pub fn phase(&self, cycle: u64) -> ParsecPhase {
        let period = self.profile.compute_phase_len + self.profile.burst_phase_len;
        if cycle % period < self.profile.compute_phase_len {
            ParsecPhase::Compute
        } else {
            ParsecPhase::Communicate
        }
    }

    /// The hot-spot nodes (memory-controller models) of a `rows × cols`
    /// mesh: the four corners.
    pub fn hotspots(rows: usize, cols: usize) -> [NodeId; 4] {
        [
            NodeId(0),
            NodeId(cols - 1),
            NodeId((rows - 1) * cols),
            NodeId(rows * cols - 1),
        ]
    }
}

impl TrafficGenerator for ParsecGenerator {
    fn inject(&mut self, network: &mut Network, cycle: u64) {
        let rows = network.config().rows;
        let cols = network.config().cols;
        let n = rows * cols;
        let rate = match self.phase(cycle) {
            ParsecPhase::Compute => self.profile.compute_injection_rate,
            ParsecPhase::Communicate => self.profile.burst_injection_rate,
        };
        let hotspots = Self::hotspots(rows, cols);
        for node in 0..n {
            if self.rng.gen_bool(rate) {
                let src = NodeId(node);
                let dst = if self.rng.gen_bool(self.profile.hotspot_fraction) {
                    hotspots[self.rng.gen_range(0..hotspots.len())]
                } else {
                    NodeId(self.rng.gen_range(0..n))
                };
                if dst != src {
                    network.enqueue_with_class(src, dst, cycle, TrafficClass::Benign);
                }
            }
        }
    }

    fn name(&self) -> String {
        format!("PARSEC {}", self.workload.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::BernoulliInjector;
    use crate::pattern::SyntheticPattern;
    use noc_sim::NocConfig;

    #[test]
    fn phase_alternates() {
        let g = ParsecGenerator::new(ParsecWorkload::Blackscholes, 0);
        assert_eq!(g.phase(0), ParsecPhase::Compute);
        assert_eq!(g.phase(399), ParsecPhase::Compute);
        assert_eq!(g.phase(400), ParsecPhase::Communicate);
        assert_eq!(g.phase(459), ParsecPhase::Communicate);
        assert_eq!(g.phase(460), ParsecPhase::Compute);
    }

    #[test]
    fn parsec_traffic_is_sparser_than_stp() {
        let cycles = 2_000u64;
        let mut p_net = Network::new(NocConfig::mesh(8, 8));
        let mut parsec = ParsecGenerator::new(ParsecWorkload::Bodytrack, 3);
        let mut s_net = Network::new(NocConfig::mesh(8, 8));
        let mut stp = BernoulliInjector::new(SyntheticPattern::UniformRandom, 0.05, 3);
        for c in 0..cycles {
            parsec.inject(&mut p_net, c);
            p_net.step();
            stp.inject(&mut s_net, c);
            s_net.step();
        }
        assert!(
            p_net.stats().packets_created * 2 < s_net.stats().packets_created,
            "PARSEC-like traffic ({}) should be much sparser than STP ({})",
            p_net.stats().packets_created,
            s_net.stats().packets_created
        );
    }

    #[test]
    fn hotspots_are_corners() {
        let h = ParsecGenerator::hotspots(8, 8);
        assert_eq!(h, [NodeId(0), NodeId(7), NodeId(56), NodeId(63)]);
    }

    #[test]
    fn all_workloads_generate_some_traffic() {
        for w in ParsecWorkload::ALL {
            let mut net = Network::new(NocConfig::mesh(8, 8));
            let mut g = ParsecGenerator::new(w, 5);
            for c in 0..3_000 {
                g.inject(&mut net, c);
                net.step();
            }
            assert!(net.stats().packets_created > 0, "{w} generated no packets");
            assert!(net.stats().packets_received > 0);
        }
    }

    #[test]
    fn profiles_keep_rates_low() {
        for w in ParsecWorkload::ALL {
            let p = w.profile();
            assert!(p.burst_injection_rate < 0.05);
            assert!(p.compute_injection_rate < p.burst_injection_rate);
            assert!((0.0..=1.0).contains(&p.hotspot_fraction));
        }
    }
}
