//! Multi-source distributed DoS with coordinated, staggered injection.
//!
//! Modeled after the topology-aware distributed NoC DoS of Weerasena et
//! al. 2025: several malicious nodes spread over the topology coordinate
//! against one victim, each contributing only a fraction of the aggregate
//! flooding rate so that no single source crosses a per-node detection
//! threshold. The sources take turns in a round-robin schedule — in cycle
//! `c` only attacker `c % k` may fire, with probability `fir` — so the
//! *aggregate* injection rate matches a single-source FDoS at the same FIR
//! while each source averages `fir / k`.

use crate::generator::TrafficGenerator;
use noc_sim::flit::TrafficClass;
use noc_sim::{Network, NodeId, Topology};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A coordinated distributed DoS attack: `k` sources share one victim and
/// one aggregate FIR via round-robin turn-taking.
///
/// # Examples
///
/// ```
/// use noc_sim::NodeId;
/// use noc_traffic::DistributedAttack;
///
/// let attack = DistributedAttack::new(vec![NodeId(3), NodeId(12)], NodeId(5), 0.8);
/// assert_eq!(attack.attackers().len(), 2);
/// assert_eq!(attack.fir(), 0.8);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistributedAttack {
    attackers: Vec<NodeId>,
    victim: NodeId,
    fir: f64,
    seed: u64,
    #[serde(skip)]
    rng: Option<ChaCha8Rng>,
}

impl DistributedAttack {
    /// Creates a distributed attack by `attackers` against `victim` at an
    /// *aggregate* flooding injection rate of `fir`.
    ///
    /// # Panics
    ///
    /// Panics if `fir` is outside `[0, 1]`, `attackers` is empty, or the
    /// victim is listed as an attacker.
    pub fn new(attackers: Vec<NodeId>, victim: NodeId, fir: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fir),
            "FIR must be in [0, 1], got {fir}"
        );
        assert!(!attackers.is_empty(), "at least one attacker is required");
        assert!(
            !attackers.contains(&victim),
            "the victim cannot also be an attacker"
        );
        DistributedAttack {
            attackers,
            victim,
            fir,
            seed: 0xDD05,
            rng: None,
        }
    }

    /// Overrides the RNG seed used for the Bernoulli injection decisions.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.rng = None;
        self
    }

    /// The malicious nodes.
    pub fn attackers(&self) -> &[NodeId] {
        &self.attackers
    }

    /// The target victim node.
    pub fn victim(&self) -> NodeId {
        self.victim
    }

    /// The aggregate flooding injection rate in `[0, 1]`.
    pub fn fir(&self) -> f64 {
        self.fir
    }

    /// The ground-truth victim set: target plus routing-path victims of
    /// every source.
    pub fn routing_path_victims(&self, topology: &Topology) -> Vec<NodeId> {
        crate::fdos::routing_path_victims(&self.attackers, self.victim, topology)
    }

    fn rng(&mut self) -> &mut ChaCha8Rng {
        if self.rng.is_none() {
            self.rng = Some(ChaCha8Rng::seed_from_u64(self.seed));
        }
        self.rng.as_mut().expect("just initialised")
    }
}

impl TrafficGenerator for DistributedAttack {
    fn inject(&mut self, network: &mut Network, cycle: u64) {
        let victim = self.victim;
        let fir = self.fir;
        let k = self.attackers.len() as u64;
        let designated = self.attackers[(cycle % k) as usize];
        let fire = fir >= 1.0 || self.rng().gen_bool(fir);
        if fire {
            network.enqueue_with_class(designated, victim, cycle, TrafficClass::Malicious);
        }
    }

    fn name(&self) -> String {
        format!(
            "DDoS {} source(s) -> {} @ aggregate FIR {:.2}",
            self.attackers.len(),
            self.victim,
            self.fir
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::NocConfig;

    #[test]
    fn aggregate_rate_matches_single_source_fdos() {
        let cycles = 20_000u64;
        let mut net = Network::new(NocConfig::mesh(8, 8));
        let mut attack =
            DistributedAttack::new(vec![NodeId(7), NodeId(56), NodeId(63)], NodeId(0), 0.6)
                .with_seed(5);
        for c in 0..cycles {
            attack.inject(&mut net, c);
        }
        let created = net.stats().packets_created as f64;
        let expected = 0.6 * cycles as f64;
        assert!(
            (created - expected).abs() < 0.05 * expected,
            "aggregate {created} should be near {expected}"
        );
    }

    #[test]
    fn sources_take_turns_and_all_contribute() {
        let mut net = Network::new(NocConfig::mesh(4, 4));
        let sources = vec![NodeId(3), NodeId(12)];
        let mut attack = DistributedAttack::new(sources.clone(), NodeId(0), 1.0);
        for c in 0..100 {
            attack.inject(&mut net, c);
            net.step();
        }
        net.run(2_000);
        // FIR 1.0: one packet per cycle alternating between the two sources.
        assert_eq!(net.stats().packets_created, 100);
        assert!(net.stats().malicious_packets_received > 0);
    }

    #[test]
    fn per_source_rate_stays_under_threshold() {
        // 4 sources at aggregate FIR 0.8: each fires ~0.2/cycle, i.e. each
        // source alone looks like a modest FDoS well under the aggregate.
        let cycles = 40_000u64;
        let sources = vec![NodeId(15), NodeId(48), NodeId(51), NodeId(60)];
        let mut per_source = [0u64; 4];
        let mut attack = DistributedAttack::new(sources.clone(), NodeId(0), 0.8).with_seed(9);
        let mut net = Network::new(NocConfig::mesh(8, 8));
        for c in 0..cycles {
            let before = net.stats().packets_created;
            attack.inject(&mut net, c);
            if net.stats().packets_created > before {
                per_source[(c % 4) as usize] += 1;
            }
        }
        for (i, &count) in per_source.iter().enumerate() {
            let rate = count as f64 / cycles as f64;
            assert!(
                (rate - 0.2).abs() < 0.02,
                "source {i} rate {rate} should be near 0.2"
            );
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let run = |seed| {
            let mut net = Network::new(NocConfig::mesh(4, 4));
            let mut a =
                DistributedAttack::new(vec![NodeId(3), NodeId(12)], NodeId(0), 0.5).with_seed(seed);
            for c in 0..1_000 {
                a.inject(&mut net, c);
                net.step();
            }
            net.stats().packets_created
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "at least one attacker")]
    fn empty_sources_panic() {
        DistributedAttack::new(vec![], NodeId(0), 0.5);
    }
}
