//! The unified DoS attack surface: every attack family behind one enum.
//!
//! [`AttackScenario`](crate::AttackScenario) holds its ground-truth attacks
//! as [`DosAttack`] values so the monitor and the campaign engine can treat
//! flooding, distributed and stealth attackers uniformly — same attacker /
//! victim / FIR accessors, same routing-path-victim ground truth, same
//! seeding discipline.

use crate::ddos::DistributedAttack;
use crate::fdos::FloodingAttack;
use crate::generator::TrafficGenerator;
use crate::stealth::StealthAttack;
use noc_sim::{Network, NodeId, Topology};
use serde::{Deserialize, Serialize};

/// The DoS attack families the campaign grid can sweep over.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackKind {
    /// Single- or multi-source flooding at a fixed FIR
    /// ([`FloodingAttack`]).
    #[default]
    Fdos,
    /// Coordinated multi-source distributed DoS with round-robin
    /// turn-taking ([`DistributedAttack`]).
    Ddos,
    /// Duty-cycled ramp-up flooding that stays under the FIR threshold
    /// ([`StealthAttack`]).
    Stealth,
}

impl AttackKind {
    /// The lowercase spec-axis name (`"fdos"`, `"ddos"`, `"stealth"`).
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::Fdos => "fdos",
            AttackKind::Ddos => "ddos",
            AttackKind::Stealth => "stealth",
        }
    }
}

/// One configured DoS attack of any family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DosAttack {
    /// A flooding (FDoS) attack.
    Flooding(FloodingAttack),
    /// A distributed multi-source attack.
    Distributed(DistributedAttack),
    /// A stealthy duty-cycle / ramp-up attack.
    Stealth(StealthAttack),
}

impl DosAttack {
    /// The family this attack belongs to.
    pub fn kind(&self) -> AttackKind {
        match self {
            DosAttack::Flooding(_) => AttackKind::Fdos,
            DosAttack::Distributed(_) => AttackKind::Ddos,
            DosAttack::Stealth(_) => AttackKind::Stealth,
        }
    }

    /// The malicious nodes.
    pub fn attackers(&self) -> &[NodeId] {
        match self {
            DosAttack::Flooding(a) => a.attackers(),
            DosAttack::Distributed(a) => a.attackers(),
            DosAttack::Stealth(a) => a.attackers(),
        }
    }

    /// The target victim node.
    pub fn victim(&self) -> NodeId {
        match self {
            DosAttack::Flooding(a) => a.victim(),
            DosAttack::Distributed(a) => a.victim(),
            DosAttack::Stealth(a) => a.victim(),
        }
    }

    /// The (peak/aggregate) flooding injection rate in `[0, 1]`.
    pub fn fir(&self) -> f64 {
        match self {
            DosAttack::Flooding(a) => a.fir(),
            DosAttack::Distributed(a) => a.fir(),
            DosAttack::Stealth(a) => a.fir(),
        }
    }

    /// Overrides the RNG seed used for the injection decisions.
    pub fn with_seed(self, seed: u64) -> Self {
        match self {
            DosAttack::Flooding(a) => DosAttack::Flooding(a.with_seed(seed)),
            DosAttack::Distributed(a) => DosAttack::Distributed(a.with_seed(seed)),
            DosAttack::Stealth(a) => DosAttack::Stealth(a.with_seed(seed)),
        }
    }

    /// The ground-truth victim set: target plus routing-path victims.
    pub fn routing_path_victims(&self, topology: &Topology) -> Vec<NodeId> {
        crate::fdos::routing_path_victims(self.attackers(), self.victim(), topology)
    }
}

impl From<FloodingAttack> for DosAttack {
    fn from(a: FloodingAttack) -> Self {
        DosAttack::Flooding(a)
    }
}

impl From<DistributedAttack> for DosAttack {
    fn from(a: DistributedAttack) -> Self {
        DosAttack::Distributed(a)
    }
}

impl From<StealthAttack> for DosAttack {
    fn from(a: StealthAttack) -> Self {
        DosAttack::Stealth(a)
    }
}

impl TrafficGenerator for DosAttack {
    fn inject(&mut self, network: &mut Network, cycle: u64) {
        match self {
            DosAttack::Flooding(a) => a.inject(network, cycle),
            DosAttack::Distributed(a) => a.inject(network, cycle),
            DosAttack::Stealth(a) => a.inject(network, cycle),
        }
    }

    fn name(&self) -> String {
        match self {
            DosAttack::Flooding(a) => TrafficGenerator::name(a),
            DosAttack::Distributed(a) => TrafficGenerator::name(a),
            DosAttack::Stealth(a) => TrafficGenerator::name(a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_and_accessors_dispatch() {
        let f: DosAttack = FloodingAttack::new(vec![NodeId(3)], NodeId(0), 0.8).into();
        let d: DosAttack =
            DistributedAttack::new(vec![NodeId(3), NodeId(12)], NodeId(0), 0.8).into();
        let s: DosAttack = StealthAttack::new(vec![NodeId(3)], NodeId(0), 0.8).into();
        assert_eq!(f.kind(), AttackKind::Fdos);
        assert_eq!(d.kind(), AttackKind::Ddos);
        assert_eq!(s.kind(), AttackKind::Stealth);
        for a in [&f, &d, &s] {
            assert_eq!(a.victim(), NodeId(0));
            assert_eq!(a.fir(), 0.8);
            assert!(a.attackers().contains(&NodeId(3)));
        }
        assert_eq!(d.attackers().len(), 2);
    }

    #[test]
    fn rpv_dispatches_through_the_enum() {
        let mesh = Topology::mesh(4, 4);
        let f: DosAttack = FloodingAttack::new(vec![NodeId(3)], NodeId(0), 0.8).into();
        assert_eq!(
            f.routing_path_victims(&mesh),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn attack_kind_names_round_trip_style() {
        assert_eq!(AttackKind::Fdos.name(), "fdos");
        assert_eq!(AttackKind::Ddos.name(), "ddos");
        assert_eq!(AttackKind::Stealth.name(), "stealth");
        assert_eq!(AttackKind::default(), AttackKind::Fdos);
    }
}
