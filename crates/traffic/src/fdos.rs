//! The refined flooding DoS (FDoS) model with an adjustable Flooding
//! Injection Rate.
//!
//! This is the paper's first contribution: a flooding attack that
//!
//! * is launched by one or more **malicious nodes** against a single **target
//!   victim**,
//! * injects protocol-legal packets that follow the default XY routing (no
//!   compromised routers, balanced credits),
//! * *overlays* normal workload traffic — benign communication continues,
//!   merely slowed down, and
//! * exposes a single tuning knob, the **Flooding Injection Rate (FIR)**: the
//!   probability per cycle that each attacker injects one flooding packet.
//!   `FIR = 0` disables the attack; `FIR = 1` saturates the victim's row and
//!   crashes the system; intermediate values trade stealth for impact.

use crate::generator::TrafficGenerator;
use noc_sim::flit::TrafficClass;
use noc_sim::{Network, NodeId, Topology};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The ground-truth set of victims of an attack: the target victim plus
/// every routing-path victim (RPV) on the minimal route of each attacker,
/// excluding the attackers themselves. Sorted and deduplicated.
///
/// # Panics
///
/// Panics if the victim or an attacker lies outside the topology.
pub fn routing_path_victims(
    attackers: &[NodeId],
    victim: NodeId,
    topology: &Topology,
) -> Vec<NodeId> {
    let mut victims: Vec<NodeId> = Vec::new();
    for &a in attackers {
        for node in topology.route_path_unchecked(a, victim) {
            if !attackers.contains(&node) && !victims.contains(&node) {
                victims.push(node);
            }
        }
    }
    victims.sort();
    victims
}

/// A flooding DoS attack configuration: attacker nodes, a victim and the FIR.
///
/// # Examples
///
/// ```
/// use noc_sim::{NodeId, Topology};
/// use noc_traffic::FloodingAttack;
///
/// let attack = FloodingAttack::new(vec![NodeId(104)], NodeId(0), 0.8);
/// let rpv = attack.routing_path_victims(&Topology::mesh(16, 16));
/// assert!(rpv.contains(&NodeId(96)));   // the corner hop of the XY route
/// assert!(rpv.contains(&NodeId(0)));    // the target victim
/// assert!(!rpv.contains(&NodeId(104))); // the attacker itself is not a victim
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FloodingAttack {
    attackers: Vec<NodeId>,
    victim: NodeId,
    fir: f64,
    seed: u64,
    #[serde(skip)]
    rng: Option<ChaCha8Rng>,
}

impl FloodingAttack {
    /// Creates an attack by `attackers` against `victim` at flooding
    /// injection rate `fir`.
    ///
    /// # Panics
    ///
    /// Panics if `fir` is outside `[0, 1]`, `attackers` is empty, or the
    /// victim is listed as an attacker.
    pub fn new(attackers: Vec<NodeId>, victim: NodeId, fir: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fir),
            "FIR must be in [0, 1], got {fir}"
        );
        assert!(!attackers.is_empty(), "at least one attacker is required");
        assert!(
            !attackers.contains(&victim),
            "the victim cannot also be an attacker"
        );
        FloodingAttack {
            attackers,
            victim,
            fir,
            seed: 0xD05,
            rng: None,
        }
    }

    /// Overrides the RNG seed used for the Bernoulli injection decisions.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.rng = None;
        self
    }

    /// The malicious nodes.
    pub fn attackers(&self) -> &[NodeId] {
        &self.attackers
    }

    /// The target victim node.
    pub fn victim(&self) -> NodeId {
        self.victim
    }

    /// The flooding injection rate in `[0, 1]`.
    pub fn fir(&self) -> f64 {
        self.fir
    }

    /// The ground-truth set of victims: the target victim plus every
    /// routing-path victim (RPV) on the minimal route of each attacker,
    /// excluding the attackers themselves.
    pub fn routing_path_victims(&self, topology: &Topology) -> Vec<NodeId> {
        routing_path_victims(&self.attackers, self.victim, topology)
    }

    fn rng(&mut self) -> &mut ChaCha8Rng {
        if self.rng.is_none() {
            self.rng = Some(ChaCha8Rng::seed_from_u64(self.seed));
        }
        self.rng.as_mut().expect("just initialised")
    }
}

impl TrafficGenerator for FloodingAttack {
    fn inject(&mut self, network: &mut Network, cycle: u64) {
        let victim = self.victim;
        let fir = self.fir;
        let attackers = self.attackers.clone();
        for attacker in attackers {
            let fire = fir >= 1.0 || self.rng().gen_bool(fir);
            if fire {
                network.enqueue_with_class(attacker, victim, cycle, TrafficClass::Malicious);
            }
        }
    }

    fn name(&self) -> String {
        format!(
            "FDoS {} attacker(s) -> {} @ FIR {:.2}",
            self.attackers.len(),
            self.victim,
            self.fir
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::NocConfig;

    #[test]
    fn fir_zero_injects_nothing() {
        let mut net = Network::new(NocConfig::mesh(4, 4));
        let mut attack = FloodingAttack::new(vec![NodeId(15)], NodeId(0), 0.0);
        for c in 0..500 {
            attack.inject(&mut net, c);
            net.step();
        }
        assert_eq!(net.stats().packets_created, 0);
    }

    #[test]
    fn fir_one_injects_every_cycle() {
        let mut net = Network::new(NocConfig::mesh(4, 4));
        let mut attack = FloodingAttack::new(vec![NodeId(15)], NodeId(0), 1.0);
        for c in 0..100 {
            attack.inject(&mut net, c);
            net.step();
        }
        assert_eq!(net.stats().packets_created, 100);
    }

    #[test]
    fn higher_fir_floods_more() {
        let run = |fir| {
            let mut net = Network::new(NocConfig::mesh(8, 8));
            let mut attack = FloodingAttack::new(vec![NodeId(63)], NodeId(0), fir).with_seed(1);
            for c in 0..2_000 {
                attack.inject(&mut net, c);
                net.step();
            }
            net.stats().packets_created
        };
        let low = run(0.1);
        let high = run(0.8);
        assert!(
            high > 3 * low,
            "FIR 0.8 ({high}) should flood far more than 0.1 ({low})"
        );
    }

    #[test]
    fn rpv_excludes_attacker_and_includes_victim() {
        let mesh = Topology::mesh(4, 4);
        let attack = FloodingAttack::new(vec![NodeId(3)], NodeId(0), 0.5);
        let rpv = attack.routing_path_victims(&mesh);
        assert_eq!(rpv, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn rpv_merges_multiple_attackers() {
        let mesh = Topology::mesh(4, 4);
        // Attackers at opposite row ends of victim 5.
        let attack = FloodingAttack::new(vec![NodeId(7), NodeId(4)], NodeId(5), 0.5);
        let rpv = attack.routing_path_victims(&mesh);
        assert!(rpv.contains(&NodeId(5)));
        assert!(rpv.contains(&NodeId(6)));
        assert!(!rpv.contains(&NodeId(7)));
        assert!(!rpv.contains(&NodeId(4)));
    }

    #[test]
    fn rpv_follows_wrap_links_on_torus() {
        let torus = Topology::torus(4, 4);
        // On the torus, 3 -> 0 is one wrap hop: only the victim is an RPV.
        let attack = FloodingAttack::new(vec![NodeId(3)], NodeId(0), 0.5);
        assert_eq!(attack.routing_path_victims(&torus), vec![NodeId(0)]);
    }

    #[test]
    fn malicious_packets_reach_the_victim() {
        let mut net = Network::new(NocConfig::mesh(4, 4));
        let mut attack = FloodingAttack::new(vec![NodeId(12)], NodeId(3), 0.5).with_seed(2);
        for c in 0..1_000 {
            attack.inject(&mut net, c);
            net.step();
        }
        net.run(500);
        assert!(net.stats().malicious_packets_received > 100);
        assert!(net.stats().received_per_node[3] > 100);
    }

    #[test]
    #[should_panic(expected = "FIR")]
    fn invalid_fir_panics() {
        FloodingAttack::new(vec![NodeId(1)], NodeId(0), 1.2);
    }

    #[test]
    #[should_panic(expected = "victim cannot also be an attacker")]
    fn victim_as_attacker_panics() {
        FloodingAttack::new(vec![NodeId(0)], NodeId(0), 0.5);
    }
}
