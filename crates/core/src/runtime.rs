//! Online runtime monitoring loop.
//!
//! The paper's operational flow (Section 3) runs DL2Fence *continuously*:
//! every sampling period the detector inspects fresh VCO frames; when an
//! attack is flagged, the localizer, fusion, VCE and TLM stages run and the
//! system "quickly proceeds to the next VCO sampling and detection/
//! localization round, ensuring rapid identification of any attackers missed
//! in the previous round, repeating until no abnormal frames appear".
//!
//! [`RuntimeMonitor`] implements that loop on top of a live
//! [`noc_traffic::AttackScenario`], accumulating the attackers and victims
//! found across rounds — this is how multi-attacker scenarios, which the
//! Table-Like Method resolves over several 1–2-attacker rounds, are fully
//! localized.

use crate::pipeline::{Dl2Fence, FenceReport};
use dl2fence_telemetry::Recorder;
use noc_sim::NodeId;
use noc_traffic::AttackScenario;
use serde::{Deserialize, Serialize};

/// One completed monitoring round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitoringRound {
    /// Simulation cycle at which the round's frames were sampled.
    pub sampled_at: u64,
    /// Whether this round flagged an attack.
    pub detected: bool,
    /// Victims localized in this round.
    pub victims: Vec<NodeId>,
    /// Attackers localized in this round.
    pub attackers: Vec<NodeId>,
}

/// The accumulated outcome of a monitoring session.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MonitoringLog {
    /// Every completed round, in order.
    pub rounds: Vec<MonitoringRound>,
    /// Union of all localized victims.
    pub victims: Vec<NodeId>,
    /// Union of all localized attackers.
    pub attackers: Vec<NodeId>,
}

impl MonitoringLog {
    /// Number of rounds that flagged an attack.
    pub fn detections(&self) -> usize {
        self.rounds.iter().filter(|r| r.detected).count()
    }

    /// Number of rounds executed.
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    fn absorb(&mut self, round: MonitoringRound) {
        for v in &round.victims {
            if !self.victims.contains(v) {
                self.victims.push(*v);
            }
        }
        for a in &round.attackers {
            if !self.attackers.contains(a) {
                self.attackers.push(*a);
            }
        }
        self.rounds.push(round);
        self.victims.sort();
        self.attackers.sort();
    }
}

/// Drives a trained [`Dl2Fence`] instance over a live scenario in fixed
/// sampling periods.
pub struct RuntimeMonitor {
    fence: Dl2Fence,
    sample_period: u64,
    /// Round-timing recorder; disabled (free) by default.
    telemetry: Recorder,
}

impl RuntimeMonitor {
    /// Wraps a (typically already trained) framework instance with a sampling
    /// period in cycles (the paper samples every 1 000 cycles for synthetic
    /// traffic at a 2 GHz clock).
    ///
    /// # Panics
    ///
    /// Panics if `sample_period` is zero.
    pub fn new(fence: Dl2Fence, sample_period: u64) -> Self {
        assert!(sample_period > 0, "sample period must be non-zero");
        RuntimeMonitor {
            fence,
            sample_period,
            telemetry: Recorder::default(),
        }
    }

    /// Attaches a telemetry recorder: every monitoring round is wrapped in a
    /// `runtime.round` span, and the wrapped fence times its pipeline stages
    /// (see [`Dl2Fence::set_telemetry`]).
    pub fn set_telemetry(&mut self, recorder: Recorder) {
        self.fence.set_telemetry(recorder.clone());
        self.telemetry = recorder;
    }

    /// The sampling period in cycles.
    pub fn sample_period(&self) -> u64 {
        self.sample_period
    }

    /// Access to the wrapped framework (e.g. to export trained weights).
    pub fn fence(&self) -> &Dl2Fence {
        &self.fence
    }

    /// Consumes the monitor and returns the wrapped framework.
    pub fn into_fence(self) -> Dl2Fence {
        self.fence
    }

    /// Runs exactly one monitoring round: advance the scenario by one
    /// sampling period, analyse the frames, reset the BOC window.
    pub fn round(&mut self, scenario: &mut AttackScenario) -> (MonitoringRound, FenceReport) {
        let _span = self.telemetry.span("runtime.round");
        scenario.run(self.sample_period);
        let report = self.fence.monitor(scenario.network());
        scenario.network_mut().reset_boc();
        let round = MonitoringRound {
            sampled_at: scenario.network().cycle(),
            detected: report.detected,
            victims: report.victims.clone(),
            attackers: report.attackers.clone(),
        };
        (round, report)
    }

    /// Runs up to `max_rounds` monitoring rounds, accumulating localized
    /// victims and attackers. Following the paper's flow, the loop keeps
    /// going while abnormal frames appear and stops early after
    /// `quiet_rounds_to_stop` consecutive clean rounds once at least one
    /// attack has been seen.
    pub fn run(
        &mut self,
        scenario: &mut AttackScenario,
        max_rounds: usize,
        quiet_rounds_to_stop: usize,
    ) -> MonitoringLog {
        let mut log = MonitoringLog::default();
        let mut seen_attack = false;
        let mut quiet = 0usize;
        for _ in 0..max_rounds {
            let (round, _) = self.round(scenario);
            if round.detected {
                seen_attack = true;
                quiet = 0;
            } else if seen_attack {
                quiet += 1;
            }
            log.absorb(round);
            if seen_attack && quiet >= quiet_rounds_to_stop && quiet_rounds_to_stop > 0 {
                break;
            }
        }
        log
    }
}

impl std::fmt::Debug for RuntimeMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RuntimeMonitor(period {} cycles, {:?})",
            self.sample_period, self.fence
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FenceConfig;
    use noc_monitor::dataset::{CollectionConfig, DatasetGenerator, ScenarioSpec};
    use noc_sim::NocConfig;
    use noc_traffic::{BenignWorkload, FloodingAttack, SyntheticPattern};

    fn trained_fence(mesh: usize) -> Dl2Fence {
        let workload = BenignWorkload::Synthetic(SyntheticPattern::UniformRandom, 0.02);
        let generator = DatasetGenerator::new(CollectionConfig::quick(NocConfig::mesh(mesh, mesh)));
        let specs = vec![
            ScenarioSpec::attacked(workload, vec![NodeId(7)], NodeId(0), 0.9),
            ScenarioSpec::attacked(workload, vec![NodeId(56)], NodeId(63), 0.9),
            ScenarioSpec::attacked(workload, vec![NodeId(63)], NodeId(32), 0.9),
            ScenarioSpec::benign(workload),
            ScenarioSpec::benign(workload),
        ];
        let samples = generator.collect(&specs);
        let mut fence = Dl2Fence::new(
            FenceConfig::new(mesh, mesh)
                .with_epochs(40, 30)
                .with_seed(5),
        );
        fence.train(&samples);
        fence
    }

    #[test]
    fn attack_rounds_are_flagged_more_often_than_benign_rounds() {
        let mesh = 8;
        let fence = trained_fence(mesh);
        let mut monitor = RuntimeMonitor::new(fence, 400);

        let mut attacked = AttackScenario::builder(NocConfig::mesh(mesh, mesh))
            .benign(SyntheticPattern::UniformRandom, 0.02)
            .attack(FloodingAttack::new(vec![NodeId(7)], NodeId(0), 0.9))
            .seed(31)
            .build();
        let attack_log = monitor.run(&mut attacked, 4, 0);
        assert_eq!(attack_log.round_count(), 4);
        assert!(
            attack_log.detections() >= 2,
            "a sustained attack should be flagged in most rounds: {}",
            attack_log.detections()
        );
        assert!(!attack_log.victims.is_empty());

        let mut benign = AttackScenario::builder(NocConfig::mesh(mesh, mesh))
            .benign(SyntheticPattern::UniformRandom, 0.02)
            .seed(32)
            .build();
        let benign_log = monitor.run(&mut benign, 4, 0);
        assert!(
            benign_log.detections() < attack_log.detections(),
            "benign rounds ({}) must be flagged less often than attack rounds ({})",
            benign_log.detections(),
            attack_log.detections()
        );
    }

    #[test]
    fn round_resets_boc_window() {
        let mesh = 8;
        let fence = Dl2Fence::new(FenceConfig::new(mesh, mesh).with_epochs(1, 1));
        let mut monitor = RuntimeMonitor::new(fence, 300);
        let mut scenario = AttackScenario::builder(NocConfig::mesh(mesh, mesh))
            .benign(SyntheticPattern::Shuffle, 0.02)
            .seed(33)
            .build();
        let _ = monitor.round(&mut scenario);
        // Immediately after a round the BOC counters are reset.
        let boc =
            noc_monitor::FrameSampler::sample(scenario.network(), noc_monitor::FeatureKind::Boc);
        assert_eq!(boc.max_value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "sample period")]
    fn zero_period_panics() {
        let fence = Dl2Fence::new(FenceConfig::new(8, 8).with_epochs(1, 1));
        RuntimeMonitor::new(fence, 0);
    }
}
