//! Evaluation of detection and localization quality — the metrics reported
//! in Tables 1–3 of the paper (accuracy, precision, recall, F1 for both
//! tasks, per benchmark and averaged).

use crate::pipeline::Dl2Fence;
use noc_monitor::LabeledSample;
use noc_sim::NodeId;
use serde::{Deserialize, Serialize};
use tinycnn::BinaryConfusion;

/// Detection and localization confusion matrices for one benchmark.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkMetrics {
    /// Benchmark name (e.g. "Uniform Random", "Blackscholes").
    pub benchmark: String,
    /// Sample-level detection confusion (one observation per monitoring
    /// window).
    pub detection: BinaryConfusion,
    /// Node-level localization confusion, accumulated over the attack
    /// windows only (benign windows have no localization task).
    pub localization: BinaryConfusion,
    /// Number of samples evaluated.
    pub samples: usize,
}

impl BenchmarkMetrics {
    /// Creates an empty metrics block for `benchmark`.
    pub fn new(benchmark: impl Into<String>) -> Self {
        BenchmarkMetrics {
            benchmark: benchmark.into(),
            ..Default::default()
        }
    }

    /// One formatted table row: `name  D:acc/prec/rec/f1  L:acc/prec/rec/f1`.
    pub fn table_row(&self) -> String {
        format!(
            "{:<16} | D: acc {:.3} prec {:.3} rec {:.3} f1 {:.3} | L: acc {:.3} prec {:.3} rec {:.3} f1 {:.3}",
            self.benchmark,
            self.detection.accuracy(),
            self.detection.precision(),
            self.detection.recall(),
            self.detection.f1(),
            self.localization.accuracy(),
            self.localization.precision(),
            self.localization.recall(),
            self.localization.f1(),
        )
    }
}

/// The full evaluation report: per-benchmark metrics plus aggregates.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EvaluationReport {
    /// Metrics per benchmark, in first-seen order.
    pub benchmarks: Vec<BenchmarkMetrics>,
}

impl EvaluationReport {
    /// The metrics of one benchmark, if present.
    pub fn benchmark(&self, name: &str) -> Option<&BenchmarkMetrics> {
        self.benchmarks.iter().find(|b| b.benchmark == name)
    }

    /// Detection confusion aggregated over all benchmarks.
    pub fn overall_detection(&self) -> BinaryConfusion {
        let mut c = BinaryConfusion::new();
        for b in &self.benchmarks {
            c.merge(&b.detection);
        }
        c
    }

    /// Localization confusion aggregated over all benchmarks.
    pub fn overall_localization(&self) -> BinaryConfusion {
        let mut c = BinaryConfusion::new();
        for b in &self.benchmarks {
            c.merge(&b.localization);
        }
        c
    }

    /// Renders the report as the table layout used in EXPERIMENTS.md.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        for b in &self.benchmarks {
            out.push_str(&b.table_row());
            out.push('\n');
        }
        let d = self.overall_detection();
        let l = self.overall_localization();
        out.push_str(&format!(
            "{:<16} | D: acc {:.3} prec {:.3} rec {:.3} f1 {:.3} | L: acc {:.3} prec {:.3} rec {:.3} f1 {:.3}\n",
            "Average",
            d.accuracy(),
            d.precision(),
            d.recall(),
            d.f1(),
            l.accuracy(),
            l.precision(),
            l.recall(),
            l.f1(),
        ));
        out
    }
}

/// Records one analysed sample into the localization confusion: each node of
/// the mesh is one observation (predicted victim vs ground-truth victim).
fn record_localization(
    confusion: &mut BinaryConfusion,
    predicted: &[NodeId],
    truth: &[NodeId],
    node_count: usize,
) {
    for id in 0..node_count {
        let node = NodeId(id);
        confusion.record(predicted.contains(&node), truth.contains(&node));
    }
}

/// Evaluates a trained [`Dl2Fence`] instance on a set of labeled samples,
/// grouping the metrics by benchmark.
///
/// Detector inference runs batched ([`Dl2Fence::analyze_batch`]), which is
/// bit-identical to per-sample analysis, so reports match the per-sample
/// path byte for byte.
pub fn evaluate(fence: &mut Dl2Fence, samples: &[LabeledSample]) -> EvaluationReport {
    let mut report = EvaluationReport::default();
    let analysed_reports = fence.analyze_batch(samples);
    for (sample, analysed) in samples.iter().zip(analysed_reports) {
        let idx = match report
            .benchmarks
            .iter()
            .position(|b| b.benchmark == sample.benchmark)
        {
            Some(i) => i,
            None => {
                report
                    .benchmarks
                    .push(BenchmarkMetrics::new(sample.benchmark.clone()));
                report.benchmarks.len() - 1
            }
        };
        let entry = &mut report.benchmarks[idx];
        entry.samples += 1;
        entry
            .detection
            .record(analysed.detected, sample.truth.under_attack);
        if sample.truth.under_attack {
            let node_count = sample.truth.rows * sample.truth.cols;
            record_localization(
                &mut entry.localization,
                &analysed.victims,
                &sample.truth.victims,
                node_count,
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FenceConfig;
    use noc_monitor::dataset::{CollectionConfig, DatasetGenerator, ScenarioSpec};
    use noc_sim::NocConfig;
    use noc_traffic::{BenignWorkload, SyntheticPattern};

    fn samples() -> Vec<LabeledSample> {
        let config = CollectionConfig {
            noc: NocConfig::mesh(8, 8),
            warmup_cycles: 100,
            sample_period: 300,
            samples_per_run: 2,
            seed: 17,
        };
        let generator = DatasetGenerator::new(config);
        let w1 = BenignWorkload::Synthetic(SyntheticPattern::UniformRandom, 0.015);
        let w2 = BenignWorkload::Synthetic(SyntheticPattern::Tornado, 0.015);
        generator.collect(&[
            ScenarioSpec::attacked(w1, vec![NodeId(7)], NodeId(0), 0.9),
            ScenarioSpec::benign(w1),
            ScenarioSpec::attacked(w2, vec![NodeId(63)], NodeId(56), 0.9),
            ScenarioSpec::benign(w2),
        ])
    }

    #[test]
    fn evaluation_groups_by_benchmark() {
        let samples = samples();
        let mut fence = Dl2Fence::new(FenceConfig::new(8, 8).with_epochs(2, 2));
        fence.train(&samples);
        let report = evaluate(&mut fence, &samples);
        assert_eq!(report.benchmarks.len(), 2);
        assert!(report.benchmark("Uniform Random").is_some());
        assert!(report.benchmark("Tornado").is_some());
        assert_eq!(report.benchmark("Tornado").unwrap().samples, 4);
    }

    #[test]
    fn overall_metrics_merge_benchmarks() {
        let samples = samples();
        let mut fence = Dl2Fence::new(FenceConfig::new(8, 8).with_epochs(2, 2));
        fence.train(&samples);
        let report = evaluate(&mut fence, &samples);
        let total: u64 = report.benchmarks.iter().map(|b| b.detection.total()).sum();
        assert_eq!(report.overall_detection().total(), total);
    }

    #[test]
    fn table_rendering_contains_all_benchmarks() {
        let samples = samples();
        let mut fence = Dl2Fence::new(FenceConfig::new(8, 8).with_epochs(1, 1));
        let report = evaluate(&mut fence, &samples);
        let table = report.render_table();
        assert!(table.contains("Uniform Random"));
        assert!(table.contains("Tornado"));
        assert!(table.contains("Average"));
    }

    #[test]
    fn localization_confusion_counts_every_node() {
        let mut c = BinaryConfusion::new();
        record_localization(&mut c, &[NodeId(0)], &[NodeId(0), NodeId(1)], 16);
        assert_eq!(c.total(), 16);
        assert_eq!(c.true_positives, 1);
        assert_eq!(c.false_negatives, 1);
        assert_eq!(c.true_negatives, 14);
    }
}
