//! Multi-Frame Fusion (MFF): merging per-direction segmentation results into
//! a single victim map (Algorithm 1 of the paper).

use noc_sim::{Direction, NodeId};
use serde::{Deserialize, Serialize};

/// The result of fusing the directional segmentation maps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusionResult {
    /// The fused frame: per node, the number of directions that flagged it
    /// (after binarization and padding).
    pub fused: Vec<f32>,
    /// Rows of the (padded) fused frame.
    pub rows: usize,
    /// Columns of the (padded) fused frame.
    pub cols: usize,
    /// The victims: nodes flagged by at least one direction.
    pub victims: Vec<NodeId>,
    /// The directions whose segmentation contained at least one flagged
    /// pixel (the "abnormal frames" consumed by the Table-Like Method).
    pub abnormal_directions: Vec<Direction>,
    /// Per-direction flagged node sets (used by the Table-Like Method to
    /// compute `Max('D')` / `Min('D')`).
    pub flagged_by_direction: [Vec<NodeId>; 4],
}

impl FusionResult {
    /// Whether fusion found any victim at all.
    pub fn has_victims(&self) -> bool {
        !self.victims.is_empty()
    }
}

/// Multi-Frame Fusion: binarize each directional segmentation map, zero-pad
/// it to a standard grid, and accumulate the four maps. Nodes with a fused
/// value ≥ 1 are victims.
///
/// The paper pads to a fixed 16×16 grid so one accelerator services every
/// mesh size; padding is a no-op when the mesh is already that large.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiFrameFusion {
    /// Segmentation probability threshold used for binarization.
    pub threshold: f32,
    /// Rows of the padded fusion grid.
    pub target_rows: usize,
    /// Columns of the padded fusion grid.
    pub target_cols: usize,
}

impl MultiFrameFusion {
    /// Creates a fusion stage with the paper's defaults: threshold 0.5 and a
    /// 16×16 fusion grid.
    pub fn new() -> Self {
        MultiFrameFusion {
            threshold: 0.5,
            target_rows: 16,
            target_cols: 16,
        }
    }

    /// Creates a fusion stage for a specific mesh size (no padding beyond
    /// the mesh itself).
    pub fn for_mesh(rows: usize, cols: usize) -> Self {
        MultiFrameFusion {
            threshold: 0.5,
            target_rows: rows.max(16),
            target_cols: cols.max(16),
        }
    }

    /// Overrides the binarization threshold (used by the threshold ablation).
    ///
    /// # Panics
    ///
    /// Panics if the threshold is outside `(0, 1)`.
    pub fn with_threshold(mut self, threshold: f32) -> Self {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "threshold must be in (0, 1)"
        );
        self.threshold = threshold;
        self
    }

    /// Fuses the four directional segmentation maps (each a `rows × cols`
    /// row-major probability buffer in E, N, W, S order).
    ///
    /// # Panics
    ///
    /// Panics if any map's length differs from `rows * cols`.
    pub fn fuse(&self, segmentations: &[Vec<f32>; 4], rows: usize, cols: usize) -> FusionResult {
        for seg in segmentations {
            assert_eq!(seg.len(), rows * cols, "segmentation size mismatch");
        }
        let out_rows = self.target_rows.max(rows);
        let out_cols = self.target_cols.max(cols);
        let mut fused = vec![0.0f32; out_rows * out_cols];
        let mut abnormal_directions = Vec::new();
        let mut flagged_by_direction: [Vec<NodeId>; 4] =
            [Vec::new(), Vec::new(), Vec::new(), Vec::new()];

        for (d, seg) in segmentations.iter().enumerate() {
            let mut any = false;
            for y in 0..rows {
                for x in 0..cols {
                    if seg[y * cols + x] > self.threshold {
                        any = true;
                        fused[y * out_cols + x] += 1.0;
                        let node = NodeId(y * cols + x);
                        if !flagged_by_direction[d].contains(&node) {
                            flagged_by_direction[d].push(node);
                        }
                    }
                }
            }
            if any {
                abnormal_directions.push(Direction::from_index(d));
            }
        }

        // Victims: any node of the *original* mesh flagged at least once.
        let mut victims = Vec::new();
        for y in 0..rows {
            for x in 0..cols {
                if fused[y * out_cols + x] >= 1.0 {
                    victims.push(NodeId(y * cols + x));
                }
            }
        }
        victims.sort();
        for f in &mut flagged_by_direction {
            f.sort();
        }

        FusionResult {
            fused,
            rows: out_rows,
            cols: out_cols,
            victims,
            abnormal_directions,
            flagged_by_direction,
        }
    }
}

impl Default for MultiFrameFusion {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg_with(rows: usize, cols: usize, nodes: &[usize]) -> Vec<f32> {
        let mut v = vec![0.0f32; rows * cols];
        for &n in nodes {
            v[n] = 0.9;
        }
        v
    }

    #[test]
    fn empty_segmentations_fuse_to_nothing() {
        let mff = MultiFrameFusion::for_mesh(4, 4);
        let segs = [vec![0.0; 16], vec![0.0; 16], vec![0.0; 16], vec![0.0; 16]];
        let r = mff.fuse(&segs, 4, 4);
        assert!(!r.has_victims());
        assert!(r.abnormal_directions.is_empty());
    }

    #[test]
    fn single_direction_route_is_reconstructed() {
        let mff = MultiFrameFusion::for_mesh(4, 4);
        // East frame flags nodes 0, 1, 2 (a westward flood along row 0).
        let segs = [
            seg_with(4, 4, &[0, 1, 2]),
            vec![0.0; 16],
            vec![0.0; 16],
            vec![0.0; 16],
        ];
        let r = mff.fuse(&segs, 4, 4);
        assert_eq!(r.victims, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(r.abnormal_directions, vec![Direction::East]);
        assert_eq!(
            r.flagged_by_direction[0],
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn fusion_unions_multiple_directions() {
        let mff = MultiFrameFusion::for_mesh(4, 4);
        // L-shaped route: east leg on row 0 plus north leg on column 0.
        let segs = [
            seg_with(4, 4, &[1, 2]),
            seg_with(4, 4, &[0, 4, 8]),
            vec![0.0; 16],
            vec![0.0; 16],
        ];
        let r = mff.fuse(&segs, 4, 4);
        assert_eq!(
            r.victims,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(4), NodeId(8)]
        );
        assert_eq!(
            r.abnormal_directions,
            vec![Direction::East, Direction::North]
        );
    }

    #[test]
    fn overlapping_pixels_accumulate() {
        let mff = MultiFrameFusion::for_mesh(4, 4);
        let segs = [
            seg_with(4, 4, &[5]),
            seg_with(4, 4, &[5]),
            vec![0.0; 16],
            vec![0.0; 16],
        ];
        let r = mff.fuse(&segs, 4, 4);
        // Node 5 = (x=1, y=1) → padded index y*out_cols + x.
        assert_eq!(r.fused[r.cols + 1], 2.0);
        assert_eq!(r.victims, vec![NodeId(5)]);
    }

    #[test]
    fn fused_frame_is_padded_to_16x16() {
        let mff = MultiFrameFusion::new();
        let segs = [
            seg_with(4, 4, &[3]),
            vec![0.0; 16],
            vec![0.0; 16],
            vec![0.0; 16],
        ];
        let r = mff.fuse(&segs, 4, 4);
        assert_eq!(r.rows, 16);
        assert_eq!(r.cols, 16);
        assert_eq!(r.fused.len(), 256);
        // Node 3 of the 4x4 mesh is (x=3, y=0) → padded index 3.
        assert_eq!(r.fused[3], 1.0);
        assert_eq!(r.victims, vec![NodeId(3)]);
    }

    #[test]
    fn threshold_controls_binarization() {
        let strict = MultiFrameFusion::for_mesh(4, 4).with_threshold(0.95);
        let segs = [
            seg_with(4, 4, &[1]), // value 0.9 < 0.95
            vec![0.0; 16],
            vec![0.0; 16],
            vec![0.0; 16],
        ];
        let r = strict.fuse(&segs, 4, 4);
        assert!(!r.has_victims());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn invalid_threshold_panics() {
        MultiFrameFusion::new().with_threshold(0.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_segmentation_panics() {
        let mff = MultiFrameFusion::for_mesh(4, 4);
        let segs = [vec![0.0; 4], vec![0.0; 16], vec![0.0; 16], vec![0.0; 16]];
        mff.fuse(&segs, 4, 4);
    }
}
