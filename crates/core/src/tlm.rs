//! The Table-Like Method (TLM) for attacker localization (Figure 3 of the
//! paper).
//!
//! Once Multi-Frame Fusion has reconstructed the attack route (the
//! routing-path victims, RPV), the attacker itself sits just *beyond* the
//! route in the direction the abnormal frames point to, because flooding
//! packets follow XY routing:
//!
//! * an abnormal **East** frame means traffic arrives from the East, so the
//!   attacker id is `Max(E-flagged RPV) + 1`;
//! * **North** → `Max(N-flagged RPV) + cols`;
//! * **West** → `Min(W-flagged RPV) − 1`;
//! * **South** → `Min(S-flagged RPV) − cols`.
//!
//! Candidates that land on an already-identified victim are routing-path
//! continuations (the Y leg of an L-shaped route), not attackers, and are
//! discarded — this implements the single/multi-attacker disambiguation
//! conditions of the paper's table. Multi-attacker scenarios may need
//! several detection rounds; each round localizes the attackers whose legs
//! are visible in the current frames.

use crate::fusion::FusionResult;
use noc_sim::{Coord, Direction, NodeId};
use serde::{Deserialize, Serialize};

/// The Table-Like Method attacker localizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableLikeMethod {
    rows: usize,
    cols: usize,
}

impl TableLikeMethod {
    /// Creates a TLM stage for a `rows × cols` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be non-zero");
        TableLikeMethod { rows, cols }
    }

    /// The attacker candidate implied by one abnormal direction, or `None`
    /// when the candidate would fall off the mesh.
    pub fn candidate(&self, dir: Direction, flagged: &[NodeId]) -> Option<NodeId> {
        if flagged.is_empty() {
            return None;
        }
        let n = self.rows * self.cols;
        match dir {
            Direction::East => {
                let max = flagged.iter().max().copied()?;
                let c = Coord::from_id(max, self.cols);
                (c.x + 1 < self.cols).then(|| NodeId(max.0 + 1))
            }
            Direction::West => {
                let min = flagged.iter().min().copied()?;
                let c = Coord::from_id(min, self.cols);
                (c.x > 0).then(|| NodeId(min.0 - 1))
            }
            Direction::North => {
                let max = flagged.iter().max().copied()?;
                (max.0 + self.cols < n).then(|| NodeId(max.0 + self.cols))
            }
            Direction::South => {
                let min = flagged.iter().min().copied()?;
                (min.0 >= self.cols).then(|| NodeId(min.0 - self.cols))
            }
            Direction::Local => None,
        }
    }

    /// Localizes the attackers of one fusion result, using `victims` (the
    /// possibly VCE-completed victim set) to discard route continuations.
    ///
    /// Returns the attacker ids in ascending order, deduplicated.
    pub fn localize(&self, fusion: &FusionResult, victims: &[NodeId]) -> Vec<NodeId> {
        let mut attackers = Vec::new();
        for dir in Direction::CARDINAL {
            if !fusion.abnormal_directions.contains(&dir) {
                continue;
            }
            let flagged = &fusion.flagged_by_direction[dir.index()];
            if let Some(candidate) = self.candidate(dir, flagged) {
                // A candidate that is itself a victim is the continuation of
                // an L-shaped route, not an attacker.
                if victims.contains(&candidate) {
                    continue;
                }
                if !attackers.contains(&candidate) {
                    attackers.push(candidate);
                }
            }
        }
        attackers.sort();
        attackers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::MultiFrameFusion;

    fn fusion_with(rows: usize, cols: usize, per_direction: [&[usize]; 4]) -> FusionResult {
        let mut segs = [
            vec![0.0f32; rows * cols],
            vec![0.0f32; rows * cols],
            vec![0.0f32; rows * cols],
            vec![0.0f32; rows * cols],
        ];
        for (d, nodes) in per_direction.iter().enumerate() {
            for &n in nodes.iter() {
                segs[d][n] = 0.9;
            }
        }
        MultiFrameFusion::for_mesh(rows, cols).fuse(&segs, rows, cols)
    }

    #[test]
    fn single_east_attacker() {
        // Attacker 3 floods victim 0 on 4x4: East frame flags {0, 1, 2}.
        let fusion = fusion_with(4, 4, [&[0, 1, 2], &[], &[], &[]]);
        let tlm = TableLikeMethod::new(4, 4);
        assert_eq!(tlm.localize(&fusion, &fusion.victims), vec![NodeId(3)]);
    }

    #[test]
    fn single_west_attacker() {
        // Attacker 0 floods victim 3: West frame flags {1, 2, 3}.
        let fusion = fusion_with(4, 4, [&[], &[], &[1, 2, 3], &[]]);
        let tlm = TableLikeMethod::new(4, 4);
        assert_eq!(tlm.localize(&fusion, &fusion.victims), vec![NodeId(0)]);
    }

    #[test]
    fn single_north_attacker_straight_column() {
        // Attacker 12 floods victim 0 on 4x4 (same column): North frame flags
        // {0, 4, 8}.
        let fusion = fusion_with(4, 4, [&[], &[0, 4, 8], &[], &[]]);
        let tlm = TableLikeMethod::new(4, 4);
        assert_eq!(tlm.localize(&fusion, &fusion.victims), vec![NodeId(12)]);
    }

    #[test]
    fn single_south_attacker_straight_column() {
        // Attacker 0 floods victim 12: South frame flags {4, 8, 12}.
        let fusion = fusion_with(4, 4, [&[], &[], &[], &[4, 8, 12]]);
        let tlm = TableLikeMethod::new(4, 4);
        assert_eq!(tlm.localize(&fusion, &fusion.victims), vec![NodeId(0)]);
    }

    #[test]
    fn l_shaped_route_yields_single_attacker() {
        // Attacker 15 -> victim 0 on 4x4: route 15,14,13,12 (E ports), then
        // 8, 4, 0 (N ports). The North candidate (Max(N)+4 = 12) is itself a
        // victim and must be discarded; only node 15 is an attacker.
        let fusion = fusion_with(4, 4, [&[12, 13, 14], &[0, 4, 8], &[], &[]]);
        let tlm = TableLikeMethod::new(4, 4);
        assert_eq!(tlm.localize(&fusion, &fusion.victims), vec![NodeId(15)]);
    }

    #[test]
    fn opposite_side_attackers_are_both_found() {
        // Victim 5 on a 4x4 mesh flooded from 7 (east side, E ports of 5, 6)
        // and from 4 (west side, W port of 5).
        let fusion = fusion_with(4, 4, [&[5, 6], &[], &[5], &[]]);
        let tlm = TableLikeMethod::new(4, 4);
        assert_eq!(
            tlm.localize(&fusion, &fusion.victims),
            vec![NodeId(4), NodeId(7)]
        );
    }

    #[test]
    fn paper_example_attacker_104_victim_0() {
        // Figure 4's first example on a 16x16 mesh: attacker 104, victim 0.
        // Route: 104..96 westwards (E ports of 96..103), then 96..0 southwards
        // in column 0 — wait, 96 = (0, 6), so the Y leg descends via S? No:
        // victim 0 = (0, 0) lies south of 96, so traffic flows southwards and
        // arrives on the NORTH ports of 80, 64, 48, 32, 16, 0.
        let east: Vec<usize> = (96..104).collect();
        let north: Vec<usize> = vec![0, 16, 32, 48, 64, 80];
        let fusion = fusion_with(16, 16, [&east, &north, &[], &[]]);
        let tlm = TableLikeMethod::new(16, 16);
        assert_eq!(tlm.localize(&fusion, &fusion.victims), vec![NodeId(104)]);
    }

    #[test]
    fn candidate_off_mesh_is_rejected() {
        // East frame flags the east-most column: the "+1" candidate would
        // wrap to the next row, which is not a physical neighbour.
        let tlm = TableLikeMethod::new(4, 4);
        assert_eq!(tlm.candidate(Direction::East, &[NodeId(3)]), None);
        assert_eq!(tlm.candidate(Direction::West, &[NodeId(0)]), None);
        assert_eq!(tlm.candidate(Direction::North, &[NodeId(13)]), None);
        assert_eq!(tlm.candidate(Direction::South, &[NodeId(2)]), None);
    }

    #[test]
    fn empty_fusion_has_no_attackers() {
        let fusion = fusion_with(4, 4, [&[], &[], &[], &[]]);
        let tlm = TableLikeMethod::new(4, 4);
        assert!(tlm.localize(&fusion, &[]).is_empty());
    }

    #[test]
    fn candidate_of_empty_flag_set_is_none() {
        let tlm = TableLikeMethod::new(4, 4);
        assert_eq!(tlm.candidate(Direction::East, &[]), None);
    }
}
