//! Conversion between monitor feature frames and model tensors, and
//! construction of per-direction segmentation ground truth.

use noc_monitor::{DirectionalFrames, FeatureFrame, FeatureKind, GroundTruth, LabeledSample};
use noc_sim::routing::route_input_ports;
use noc_sim::Direction;
use tinycnn::Tensor;

/// Converts one directional frame into a single-channel `[1, rows, cols]`
/// tensor, normalizing first when the feature kind requires it (BOC).
pub fn frame_to_tensor(frame: &FeatureFrame) -> Tensor {
    let source = if frame.kind().needs_normalization() {
        frame.normalized()
    } else {
        frame.clone()
    };
    Tensor::from_vec(source.data().to_vec(), &[1, frame.rows(), frame.cols()])
}

/// Converts a four-direction bundle into the detector's 4-channel
/// `[4, rows, cols]` input tensor (E, N, W, S channel order), normalizing
/// when the feature requires it.
pub fn frames_to_detector_input(frames: &DirectionalFrames) -> Tensor {
    let source = if frames.kind().needs_normalization() {
        frames.normalized()
    } else {
        frames.clone()
    };
    Tensor::from_vec(source.to_channels(), &[4, frames.rows(), frames.cols()])
}

/// Converts all four directional frames into single-channel `[1, rows, cols]`
/// tensors scaled by the *bundle-wide* maximum (E, N, W, S order).
///
/// Sharing one scale across the four directions is what makes the attack
/// route stand out to the localizer: the route direction carries the bundle
/// maximum while quiet directions stay near zero, instead of having their
/// background noise stretched to full scale by per-frame normalization.
pub fn frames_to_localizer_inputs(frames: &DirectionalFrames) -> [Tensor; 4] {
    let scale = frames.max_value();
    let shape = [1, frames.rows(), frames.cols()];
    let make = |frame: &FeatureFrame| {
        if scale <= f32::EPSILON {
            Tensor::zeros(&shape)
        } else {
            Tensor::from_vec(frame.data().iter().map(|v| v / scale).collect(), &shape)
        }
    };
    let mut out: Vec<Tensor> = frames.iter().map(make).collect();
    let d = out.pop().expect("four frames");
    let c = out.pop().expect("four frames");
    let b = out.pop().expect("four frames");
    let a = out.pop().expect("four frames");
    [a, b, c, d]
}

/// Selects the VCO or BOC bundle of a labeled sample.
pub fn sample_frames(sample: &LabeledSample, kind: FeatureKind) -> &DirectionalFrames {
    match kind {
        FeatureKind::Vco => &sample.vco,
        FeatureKind::Boc => &sample.boc,
    }
}

/// The per-direction segmentation ground truth of a sample: for each
/// cardinal direction, a `rows × cols` mask marking the routers whose input
/// port *in that direction* lies on an attack route.
///
/// The union of the four masks over all directions equals the victim mask
/// (the attacking route), which is exactly what Multi-Frame Fusion
/// reconstructs at inference time.
pub fn direction_masks(truth: &GroundTruth) -> [Vec<f32>; 4] {
    let mesh = truth.mesh();
    let n = truth.rows * truth.cols;
    let mut masks = [
        vec![0.0f32; n],
        vec![0.0f32; n],
        vec![0.0f32; n],
        vec![0.0f32; n],
    ];
    for &(attacker, victim) in &truth.attack_pairs {
        for (node, dir) in route_input_ports(attacker, victim, &mesh) {
            masks[dir.index()][node.0] = 1.0;
        }
    }
    masks
}

/// The ground-truth mask for one direction as a `[1, rows, cols]` tensor.
pub fn direction_mask_tensor(truth: &GroundTruth, dir: Direction) -> Tensor {
    let masks = direction_masks(truth);
    Tensor::from_vec(masks[dir.index()].clone(), &[1, truth.rows, truth.cols])
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::NodeId;

    fn truth_single_attack() -> GroundTruth {
        GroundTruth {
            under_attack: true,
            attackers: vec![NodeId(3)],
            attack_pairs: vec![(NodeId(3), NodeId(0))],
            victims: vec![NodeId(0), NodeId(1), NodeId(2)],
            rows: 4,
            cols: 4,
        }
    }

    #[test]
    fn frame_to_tensor_normalizes_boc() {
        let frame = FeatureFrame::new(
            Direction::East,
            FeatureKind::Boc,
            2,
            2,
            vec![0.0, 10.0, 20.0, 40.0],
        );
        let t = frame_to_tensor(&frame);
        assert_eq!(t.shape(), &[1, 2, 2]);
        assert_eq!(t.max(), 1.0);
        assert_eq!(t.min(), 0.0);
    }

    #[test]
    fn frame_to_tensor_keeps_vco_raw() {
        let frame = FeatureFrame::new(
            Direction::East,
            FeatureKind::Vco,
            2,
            2,
            vec![0.25, 0.5, 0.5, 0.75],
        );
        let t = frame_to_tensor(&frame);
        assert_eq!(t.data(), &[0.25, 0.5, 0.5, 0.75]);
    }

    #[test]
    fn detector_input_has_four_channels() {
        let frames = DirectionalFrames::new(
            Direction::CARDINAL
                .into_iter()
                .map(|d| FeatureFrame::zeros(d, FeatureKind::Vco, 4, 4))
                .collect(),
        );
        let t = frames_to_detector_input(&frames);
        assert_eq!(t.shape(), &[4, 4, 4]);
    }

    #[test]
    fn westward_attack_marks_east_direction_mask() {
        // Attacker 3 -> victim 0 on a 4x4 mesh: traffic flows west, arriving
        // on the EAST input ports of nodes 2, 1, 0.
        let truth = truth_single_attack();
        let masks = direction_masks(&truth);
        let east = &masks[Direction::East.index()];
        assert_eq!(east[0], 1.0);
        assert_eq!(east[1], 1.0);
        assert_eq!(east[2], 1.0);
        assert_eq!(east[3], 0.0);
        // No other direction sees the attack.
        for dir in [Direction::North, Direction::West, Direction::South] {
            assert!(masks[dir.index()].iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn union_of_direction_masks_equals_victim_mask() {
        let truth = GroundTruth {
            under_attack: true,
            attackers: vec![NodeId(15)],
            attack_pairs: vec![(NodeId(15), NodeId(0))],
            victims: vec![
                NodeId(0),
                NodeId(4),
                NodeId(8),
                NodeId(12),
                NodeId(13),
                NodeId(14),
            ],
            rows: 4,
            cols: 4,
        };
        let masks = direction_masks(&truth);
        let mut union = vec![0.0f32; 16];
        for m in &masks {
            for (u, &v) in union.iter_mut().zip(m) {
                if v > 0.0 {
                    *u = 1.0;
                }
            }
        }
        assert_eq!(union, truth.victim_mask());
    }

    #[test]
    fn benign_truth_has_empty_masks() {
        let truth = GroundTruth::benign(4, 4);
        for m in direction_masks(&truth) {
            assert!(m.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn mask_tensor_shape() {
        let truth = truth_single_attack();
        let t = direction_mask_tensor(&truth, Direction::East);
        assert_eq!(t.shape(), &[1, 4, 4]);
        assert_eq!(t.sum(), 3.0);
    }
}
