//! # dl2fence — deep learning and frame fusion for flooding-DoS detection
//! and localization in large-scale NoCs
//!
//! This crate is the reproduction of the paper's primary contribution. It
//! composes the three framework stages on top of the [`noc_sim`],
//! [`noc_traffic`], [`noc_monitor`] and [`tinycnn`] substrates:
//!
//! 1. **DoS Detector** ([`DosDetector`]) — a lightweight CNN *classification*
//!    model that consumes the four directional **VCO** feature frames as a
//!    4-channel image and outputs the probability that a flooding attack is
//!    in progress.
//! 2. **DoS Profile Localizer** ([`DosLocalizer`]) — a CNN *segmentation*
//!    model that consumes one (normalized **BOC**) directional frame at a
//!    time and marks the pixels (routers) whose input port lies on the
//!    attack route.
//! 3. **Victim & attacker localization** — [`fusion::MultiFrameFusion`]
//!    merges the binarized, zero-padded segmentation outputs into a single
//!    victim map (Algorithm 1), [`vce::VictimComplementingEnhancement`]
//!    optionally completes the routing-path victims by reverse XY-routing
//!    deduction, and [`tlm::TableLikeMethod`] converts the abnormal
//!    directions plus the routing-path-victim extents into attacker node
//!    identifiers (Figure 3).
//!
//! [`Dl2Fence`] wires the stages into the end-to-end pipeline the paper
//! evaluates in Tables 1–3, and [`evaluation`] reproduces those tables'
//! metrics.
//!
//! ## Quick example
//!
//! Train on a small collected dataset and analyse a fresh sample:
//!
//! ```no_run
//! use dl2fence::prelude::*;
//! use noc_sim::NocConfig;
//! use noc_traffic::{BenignWorkload, SyntheticPattern};
//! use noc_monitor::{CollectionConfig, DatasetGenerator};
//! use noc_monitor::dataset::specs_for_benchmark;
//!
//! let noc = NocConfig::mesh(8, 8);
//! let generator = DatasetGenerator::new(CollectionConfig::quick(noc.clone()));
//! let workload = BenignWorkload::Synthetic(SyntheticPattern::UniformRandom, 0.02);
//! let samples = generator.collect(&specs_for_benchmark(workload, 8, 8, 6, 3, 0.8));
//!
//! let mut fence = Dl2Fence::new(FenceConfig::new(8, 8));
//! fence.train(&samples);
//! let report = fence.analyze(&samples[0]);
//! println!("attack detected: {}", report.detected);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod evaluation;
pub mod fusion;
pub mod input;
pub mod localizer;
pub mod pipeline;
pub mod runtime;
pub mod tlm;
pub mod vce;

pub use detector::{DetectionResult, DosDetector, QuantizedDetector};
pub use evaluation::{BenchmarkMetrics, EvaluationReport};
pub use fusion::MultiFrameFusion;
pub use localizer::DosLocalizer;
pub use pipeline::{Dl2Fence, FenceConfig, FenceModelExport, FenceReport};
pub use runtime::{MonitoringLog, MonitoringRound, RuntimeMonitor};
pub use tlm::TableLikeMethod;
pub use vce::VictimComplementingEnhancement;

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::detector::{DetectionResult, DosDetector, QuantizedDetector};
    pub use crate::evaluation::{BenchmarkMetrics, EvaluationReport};
    pub use crate::fusion::MultiFrameFusion;
    pub use crate::localizer::DosLocalizer;
    pub use crate::pipeline::{Dl2Fence, FenceConfig, FenceModelExport, FenceReport};
    pub use crate::runtime::{MonitoringLog, MonitoringRound, RuntimeMonitor};
    pub use crate::tlm::TableLikeMethod;
    pub use crate::vce::VictimComplementingEnhancement;
}
