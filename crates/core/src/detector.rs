//! The DoS detector: a lightweight CNN classification model over the four
//! directional VCO feature frames.

use crate::input::{frames_to_detector_input, sample_frames};
use noc_monitor::{DirectionalFrames, FeatureKind, LabeledSample};
use serde::{Deserialize, Serialize};
use tinycnn::prelude::*;
use tinycnn::serialize::ModelExport;

/// The outcome of running the detector on one frame bundle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionResult {
    /// The model's attack probability in `[0, 1]`.
    pub probability: f32,
    /// `probability > threshold`.
    pub detected: bool,
}

/// The paper's DoS detector: `Conv2d(4→8, 3×3) → ReLU → MaxPool2d(2) →
/// Flatten → Dense → Sigmoid`, consuming the four directional frames as a
/// 4-channel image.
///
/// # Examples
///
/// ```
/// use dl2fence::DosDetector;
///
/// let detector = DosDetector::new(8, 8, 42);
/// assert!(detector.parameter_count() > 0);
/// ```
pub struct DosDetector {
    model: Sequential,
    rows: usize,
    cols: usize,
    threshold: f32,
    kernels: usize,
}

impl DosDetector {
    /// Number of convolution kernels in the paper's minimal model.
    pub const DEFAULT_KERNELS: usize = 8;

    /// Builds an untrained detector for a `rows × cols` mesh.
    ///
    /// # Panics
    ///
    /// Panics if the mesh is smaller than 4×4 (the conv + pool stack needs at
    /// least a 4-pixel spatial extent).
    pub fn new(rows: usize, cols: usize, seed: u64) -> Self {
        Self::with_kernels(rows, cols, Self::DEFAULT_KERNELS, seed)
    }

    /// Builds a detector with a custom number of convolution kernels (used by
    /// the model-size ablation).
    ///
    /// # Panics
    ///
    /// Panics if the mesh is smaller than 4×4 or `kernels` is zero.
    pub fn with_kernels(rows: usize, cols: usize, kernels: usize, seed: u64) -> Self {
        assert!(rows >= 4 && cols >= 4, "mesh must be at least 4x4");
        assert!(kernels > 0, "at least one kernel is required");
        let conv_h = rows - 2;
        let conv_w = cols - 2;
        let pooled_h = conv_h / 2;
        let pooled_w = conv_w / 2;
        let model = Sequential::new()
            .push(Conv2d::new(4, kernels, 3, Padding::Valid, seed))
            .push(Relu::new())
            .push(MaxPool2d::new(2))
            .push(Flatten::new())
            .push(Dense::new(
                kernels * pooled_h * pooled_w,
                1,
                seed.wrapping_add(1),
            ))
            .push(Sigmoid::new());
        DosDetector {
            model,
            rows,
            cols,
            threshold: 0.5,
            kernels,
        }
    }

    /// Rebuilds a detector around previously exported weights.
    pub fn from_export(rows: usize, cols: usize, export: ModelExport) -> Self {
        DosDetector {
            model: export.into_model(),
            rows,
            cols,
            threshold: 0.5,
            kernels: Self::DEFAULT_KERNELS,
        }
    }

    /// The decision threshold (default 0.5).
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Sets the decision threshold.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is outside `(0, 1)`.
    pub fn set_threshold(&mut self, threshold: f32) {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "threshold must be in (0, 1)"
        );
        self.threshold = threshold;
    }

    /// Number of convolution kernels.
    pub fn kernels(&self) -> usize {
        self.kernels
    }

    /// Attaches a telemetry recorder: the model times every layer's forward
    /// and backward pass into `nn.detector.*` histograms.
    pub fn set_telemetry(&mut self, recorder: dl2fence_telemetry::Recorder) {
        self.model.set_telemetry(recorder, "nn.detector");
    }

    /// Total trainable parameters of the model (used by the hardware model).
    pub fn parameter_count(&self) -> usize {
        self.model.param_count()
    }

    /// Builds the training dataset from labeled samples using the requested
    /// feature (the paper uses VCO for detection).
    pub fn build_dataset(samples: &[LabeledSample], kind: FeatureKind) -> Dataset {
        samples
            .iter()
            .map(|s| {
                (
                    frames_to_detector_input(sample_frames(s, kind)),
                    Tensor::from_vec(vec![s.truth.detection_label()], &[1]),
                )
            })
            .collect()
    }

    /// Trains the detector on `samples` using the given feature.
    ///
    /// Returns the training report (per-epoch loss/accuracy history).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or the frame shape does not match the
    /// detector's mesh size.
    pub fn train(
        &mut self,
        samples: &[LabeledSample],
        kind: FeatureKind,
        epochs: usize,
        seed: u64,
    ) -> TrainingReport {
        assert!(!samples.is_empty(), "cannot train on an empty sample set");
        assert_eq!(samples[0].vco.rows(), self.rows, "mesh rows mismatch");
        assert_eq!(samples[0].vco.cols(), self.cols, "mesh cols mismatch");
        let dataset = Self::build_dataset(samples, kind);
        let mut trainer = Trainer::new(
            Adam::new(0.01),
            BinaryCrossEntropy::new(),
            TrainingConfig {
                epochs,
                batch_size: 8,
                shuffle_seed: seed,
                accuracy_threshold: self.threshold,
            },
        );
        trainer.fit(&mut self.model, &dataset)
    }

    /// Runs the detector on one frame bundle.
    ///
    /// Uses the inference-only forward ([`Sequential::predict`]): no layer
    /// caches its input, so runtime monitoring does not pay training-path
    /// allocations.
    pub fn detect(&mut self, frames: &DirectionalFrames) -> DetectionResult {
        self.detect_batch(&[frames])[0]
    }

    /// Runs the detector on a whole batch of frame bundles with **one**
    /// model invocation: the bundles are stacked into a `[n, 4, h, w]`
    /// input and pushed through the batched GEMM kernels. Per-bundle results
    /// are bit-identical to calling [`DosDetector::detect`] one bundle at a
    /// time. An empty batch (the shape of an idle flush tick in a serving
    /// loop) is a no-op returning no results.
    ///
    /// # Panics
    ///
    /// Panics if the frame shapes disagree.
    pub fn detect_batch(&mut self, bundles: &[&DirectionalFrames]) -> Vec<DetectionResult> {
        if bundles.is_empty() {
            return Vec::new();
        }
        let inputs: Vec<Tensor> = bundles
            .iter()
            .map(|b| frames_to_detector_input(b))
            .collect();
        let input_refs: Vec<&Tensor> = inputs.iter().collect();
        let batched = Tensor::stack(&input_refs);
        let output = self.model.predict(&batched);
        output
            .data()
            .iter()
            .map(|&probability| DetectionResult {
                probability,
                detected: probability > self.threshold,
            })
            .collect()
    }

    /// Exports the trained weights for storage.
    pub fn export(&self) -> ModelExport {
        self.model.export()
    }

    /// Builds the fused int8 deployment form of this detector (accelerator
    /// precision; see [`QuantizedDetector`]).
    pub fn quantize(&self) -> QuantizedDetector {
        QuantizedDetector {
            model: QuantizedModel::from_model(&self.model),
            threshold: self.threshold,
        }
    }
}

/// The int8 deployment form of [`DosDetector`]: symmetric int8 weights, i32
/// accumulation and fused dequant+bias+ReLU epilogues — the execution model
/// whose accuracy budget `specs/ablation_quantization.toml` fixes. Outputs
/// are *not* bit-identical to the f32 detector; decisions must agree within
/// the ablation's envelope (enforced by the parity tests).
#[derive(Clone)]
pub struct QuantizedDetector {
    model: QuantizedModel,
    threshold: f32,
}

impl QuantizedDetector {
    /// Rebuilds an int8 detector around a stored [`QuantizedModelExport`]
    /// artifact with the default 0.5 decision threshold — the serving-side
    /// model hot-swap path.
    pub fn from_export(export: tinycnn::serialize::QuantizedModelExport) -> Self {
        QuantizedDetector {
            model: export.into_model(),
            threshold: 0.5,
        }
    }

    /// The decision threshold (default 0.5).
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Attaches a telemetry recorder emitting `nn.qdetector.*` per-layer
    /// forward timings.
    pub fn set_telemetry(&mut self, recorder: dl2fence_telemetry::Recorder) {
        self.model.set_telemetry(recorder, "nn.qdetector");
    }

    /// Runs the int8 detector on one frame bundle.
    pub fn detect(&mut self, frames: &DirectionalFrames) -> DetectionResult {
        self.detect_batch(&[frames])[0]
    }

    /// Runs the int8 detector on a whole batch of frame bundles with one
    /// fused int8 model invocation. An empty batch is a no-op returning no
    /// results.
    ///
    /// Unlike the f32 path, per-bundle int8 results depend on the batch
    /// composition: the activation quantization scale is computed over the
    /// whole stacked input, so splitting a batch differently may shift
    /// probabilities within the quantization budget.
    ///
    /// # Panics
    ///
    /// Panics if the frame shapes disagree.
    pub fn detect_batch(&mut self, bundles: &[&DirectionalFrames]) -> Vec<DetectionResult> {
        if bundles.is_empty() {
            return Vec::new();
        }
        let inputs: Vec<Tensor> = bundles
            .iter()
            .map(|b| frames_to_detector_input(b))
            .collect();
        let input_refs: Vec<&Tensor> = inputs.iter().collect();
        let output = self.model.predict(&Tensor::stack(&input_refs));
        output
            .data()
            .iter()
            .map(|&probability| DetectionResult {
                probability,
                detected: probability > self.threshold,
            })
            .collect()
    }

    /// Exports the fused int8 weights (the compact deployment artifact).
    pub fn export(&self) -> tinycnn::serialize::QuantizedModelExport {
        self.model.export()
    }
}

impl std::fmt::Debug for QuantizedDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QuantizedDetector({} fused layers)", self.model.len())
    }
}

impl std::fmt::Debug for DosDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DosDetector({}x{}, {} kernels, {} params)",
            self.rows,
            self.cols,
            self.kernels,
            self.parameter_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_monitor::dataset::{specs_for_benchmark, CollectionConfig, DatasetGenerator};
    use noc_sim::NocConfig;
    use noc_traffic::{BenignWorkload, SyntheticPattern};

    fn small_samples() -> Vec<LabeledSample> {
        let config = CollectionConfig {
            noc: NocConfig::mesh(8, 8),
            warmup_cycles: 150,
            sample_period: 300,
            samples_per_run: 2,
            seed: 5,
        };
        let generator = DatasetGenerator::new(config);
        let workload = BenignWorkload::Synthetic(SyntheticPattern::UniformRandom, 0.02);
        generator.collect(&specs_for_benchmark(workload, 8, 8, 4, 4, 0.8))
    }

    #[test]
    fn untrained_detector_outputs_probability() {
        let samples = small_samples();
        let mut detector = DosDetector::new(8, 8, 1);
        let r = detector.detect(&samples[0].vco);
        assert!((0.0..=1.0).contains(&r.probability));
    }

    #[test]
    fn training_separates_attack_from_benign() {
        let samples = small_samples();
        let mut detector = DosDetector::new(8, 8, 7);
        let report = detector.train(&samples, FeatureKind::Vco, 40, 3);
        assert!(
            report.final_accuracy().unwrap() >= 0.75,
            "training accuracy too low: {:?}",
            report.final_accuracy()
        );
        // The mean probability over attack samples must exceed the mean over
        // benign samples.
        let mut attack_p = 0.0;
        let mut attack_n = 0;
        let mut benign_p = 0.0;
        let mut benign_n = 0;
        for s in &samples {
            let p = detector.detect(&s.vco).probability;
            if s.truth.under_attack {
                attack_p += p;
                attack_n += 1;
            } else {
                benign_p += p;
                benign_n += 1;
            }
        }
        assert!(attack_p / attack_n as f32 > benign_p / benign_n as f32);
    }

    #[test]
    fn dataset_has_one_entry_per_sample() {
        let samples = small_samples();
        let ds = DosDetector::build_dataset(&samples, FeatureKind::Vco);
        assert_eq!(ds.len(), samples.len());
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let d = DosDetector::new(16, 16, 0);
        // conv: 8*4*3*3 + 8 ; dense: 8*7*7 * 1 + 1
        assert_eq!(d.parameter_count(), 8 * 4 * 9 + 8 + 8 * 7 * 7 + 1);
    }

    #[test]
    fn export_round_trip_preserves_behavior() {
        let samples = small_samples();
        let mut detector = DosDetector::new(8, 8, 2);
        let before = detector.detect(&samples[0].vco).probability;
        let export = detector.export();
        let mut restored = DosDetector::from_export(8, 8, export);
        let after = restored.detect(&samples[0].vco).probability;
        assert!((before - after).abs() < 1e-6);
    }

    #[test]
    fn batched_detection_is_bitwise_identical_to_per_sample() {
        let samples = small_samples();
        let mut detector = DosDetector::new(8, 8, 4);
        let bundles: Vec<&DirectionalFrames> = samples.iter().map(|s| &s.vco).collect();
        let batched = detector.detect_batch(&bundles);
        assert_eq!(batched.len(), samples.len());
        for (s, batch_result) in samples.iter().zip(&batched) {
            let single = detector.detect(&s.vco);
            assert_eq!(
                single.probability.to_bits(),
                batch_result.probability.to_bits(),
                "batched probability drifted from per-sample inference"
            );
            assert_eq!(single.detected, batch_result.detected);
        }
    }

    #[test]
    fn quantized_detector_decisions_track_f32() {
        let samples = small_samples();
        let mut detector = DosDetector::new(8, 8, 7);
        detector.train(&samples, FeatureKind::Vco, 40, 3);
        let mut quantized = detector.quantize();
        let bundles: Vec<&DirectionalFrames> = samples.iter().map(|s| &s.vco).collect();
        let f32_results = detector.detect_batch(&bundles);
        let i8_results = quantized.detect_batch(&bundles);
        let mut agreements = 0;
        for (f, q) in f32_results.iter().zip(&i8_results) {
            assert!(
                (f.probability - q.probability).abs() < 0.25,
                "int8 probability drifted: {} vs {}",
                f.probability,
                q.probability
            );
            if f.detected == q.detected {
                agreements += 1;
            }
        }
        // The ablation budget: int8 decisions match f32 on all but
        // knife-edge samples.
        assert!(
            agreements as f64 / f32_results.len() as f64 >= 0.9,
            "int8 decisions diverged: {agreements}/{}",
            f32_results.len()
        );
    }

    #[test]
    fn quantized_export_round_trips() {
        let detector = DosDetector::new(8, 8, 2);
        let q = detector.quantize();
        let json = q.export().to_json().unwrap();
        let restored = tinycnn::serialize::QuantizedModelExport::from_json(&json).unwrap();
        assert_eq!(restored.layers.len(), q.export().layers.len());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn invalid_threshold_panics() {
        let mut d = DosDetector::new(8, 8, 0);
        d.set_threshold(1.5);
    }

    #[test]
    #[should_panic(expected = "at least 4x4")]
    fn tiny_mesh_panics() {
        DosDetector::new(2, 2, 0);
    }
}
