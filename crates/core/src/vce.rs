//! Victim Complementing Enhancement (VCE): completing routing-path victims
//! by reverse XY-routing deduction.
//!
//! Segmentation occasionally misses pixels in the middle of an attack route
//! (e.g. a router whose buffers happened to drain at the sampling instant).
//! Because every flooding packet follows deterministic XY routing, the full
//! routing-path-victim (RPV) set can be *deduced* from two endpoints: a
//! pseudo-source adjacent to the attacker and the target victim. VCE fills
//! the gaps by re-running XY routing between those endpoints and adding any
//! missing nodes to the victim set.

use crate::fusion::FusionResult;
use noc_sim::routing::route_path;
use noc_sim::{Coord, Direction, Mesh, NodeId};
use serde::{Deserialize, Serialize};

/// The configurable VCE stage.
///
/// The paper notes VCE "yields the best results when the initial detection
/// phase is accurate enough"; it is therefore optional and enabled through
/// [`crate::FenceConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VictimComplementingEnhancement {
    rows: usize,
    cols: usize,
}

impl VictimComplementingEnhancement {
    /// Creates a VCE stage for a `rows × cols` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be non-zero");
        VictimComplementingEnhancement { rows, cols }
    }

    /// The pseudo-source: the flagged node closest to the attacker in the
    /// primary abnormal direction (largest id for E/N floods, smallest id for
    /// W/S floods), or `None` when nothing was flagged.
    pub fn pseudo_source(&self, fusion: &FusionResult) -> Option<NodeId> {
        // Horizontal directions take priority because XY routing always
        // traverses the X leg (the leg adjacent to the attacker) first.
        for dir in [
            Direction::East,
            Direction::West,
            Direction::North,
            Direction::South,
        ] {
            let flagged = &fusion.flagged_by_direction[dir.index()];
            if flagged.is_empty() {
                continue;
            }
            let node = match dir {
                Direction::East | Direction::North => flagged.iter().max().copied(),
                Direction::West | Direction::South => flagged.iter().min().copied(),
                Direction::Local => None,
            };
            if node.is_some() {
                return node;
            }
        }
        None
    }

    /// The deduced destination: the detected victim farthest (in Manhattan
    /// distance) from the pseudo-source — for an XY route this is the target
    /// victim at the far end of the attack path.
    pub fn deduced_destination(&self, fusion: &FusionResult, pseudo_src: NodeId) -> Option<NodeId> {
        let src = Coord::from_id(pseudo_src, self.cols);
        fusion
            .victims
            .iter()
            .copied()
            .max_by_key(|v| Coord::from_id(*v, self.cols).manhattan(src))
            .filter(|v| *v != pseudo_src || fusion.victims.len() == 1)
    }

    /// Completes the victim set: the detected victims plus every node on the
    /// XY route from the pseudo-source to the deduced destination.
    ///
    /// Returns the input victims unchanged when the fusion result is empty.
    pub fn complete(&self, fusion: &FusionResult) -> Vec<NodeId> {
        let mut victims = fusion.victims.clone();
        let Some(pseudo_src) = self.pseudo_source(fusion) else {
            return victims;
        };
        let Some(dst) = self.deduced_destination(fusion, pseudo_src) else {
            return victims;
        };
        let mesh = Mesh::new(self.rows, self.cols);
        for node in route_path(pseudo_src, dst, &mesh) {
            if !victims.contains(&node) {
                victims.push(node);
            }
        }
        victims.sort();
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::MultiFrameFusion;

    fn fusion_from(rows: usize, cols: usize, east: &[usize], north: &[usize]) -> FusionResult {
        let mut segs = [
            vec![0.0f32; rows * cols],
            vec![0.0f32; rows * cols],
            vec![0.0f32; rows * cols],
            vec![0.0f32; rows * cols],
        ];
        for &n in east {
            segs[0][n] = 0.9;
        }
        for &n in north {
            segs[1][n] = 0.9;
        }
        MultiFrameFusion::for_mesh(rows, cols).fuse(&segs, rows, cols)
    }

    #[test]
    fn empty_fusion_is_returned_unchanged() {
        let fusion = fusion_from(4, 4, &[], &[]);
        let vce = VictimComplementingEnhancement::new(4, 4);
        assert!(vce.complete(&fusion).is_empty());
    }

    #[test]
    fn gap_in_straight_route_is_filled() {
        // Attacker 3 -> victim 0: true RPVs are {0, 1, 2}, but segmentation
        // missed node 1.
        let fusion = fusion_from(4, 4, &[0, 2], &[]);
        let vce = VictimComplementingEnhancement::new(4, 4);
        assert_eq!(vce.pseudo_source(&fusion), Some(NodeId(2)));
        let completed = vce.complete(&fusion);
        assert_eq!(completed, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn gap_in_l_shaped_route_is_filled() {
        // Attacker 15 -> victim 0 on a 4x4 mesh: route 15,14,13,12,8,4,0.
        // East frame flags 14..12, North frame misses node 4.
        let fusion = fusion_from(4, 4, &[12, 13, 14], &[0, 8]);
        let vce = VictimComplementingEnhancement::new(4, 4);
        assert_eq!(vce.pseudo_source(&fusion), Some(NodeId(14)));
        let completed = vce.complete(&fusion);
        assert!(
            completed.contains(&NodeId(4)),
            "missing RPV 4 should be deduced"
        );
        assert!(completed.contains(&NodeId(12)));
        assert!(completed.contains(&NodeId(0)));
    }

    #[test]
    fn complete_never_removes_detected_victims() {
        let fusion = fusion_from(4, 4, &[5, 6], &[9]);
        let vce = VictimComplementingEnhancement::new(4, 4);
        let completed = vce.complete(&fusion);
        for v in &fusion.victims {
            assert!(completed.contains(v));
        }
    }

    #[test]
    fn westward_pseudo_source_uses_minimum() {
        // West frame abnormal: attacker is to the west, pseudo source is the
        // smallest flagged id.
        let mut segs = [
            vec![0.0f32; 16],
            vec![0.0f32; 16],
            vec![0.0f32; 16],
            vec![0.0f32; 16],
        ];
        segs[Direction::West.index()][1] = 0.9;
        segs[Direction::West.index()][2] = 0.9;
        let fusion = MultiFrameFusion::for_mesh(4, 4).fuse(&segs, 4, 4);
        let vce = VictimComplementingEnhancement::new(4, 4);
        assert_eq!(vce.pseudo_source(&fusion), Some(NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_mesh_panics() {
        VictimComplementingEnhancement::new(0, 4);
    }
}
