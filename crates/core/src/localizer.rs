//! The DoS profile localizer: a CNN segmentation model over single
//! directional BOC feature frames.

use crate::input::{direction_masks, frame_to_tensor, frames_to_localizer_inputs, sample_frames};
use noc_monitor::{DirectionalFrames, FeatureFrame, FeatureKind, LabeledSample};
use noc_sim::Direction;
use tinycnn::prelude::*;
use tinycnn::serialize::ModelExport;

/// The paper's DoS profile localizer: a fully convolutional segmentation
/// model (`Conv2d(1→8) → ReLU → Conv2d(8→8) → ReLU → Conv2d(8→1) → Sigmoid`,
/// all 3×3 with same-padding) that maps one directional feature frame to a
/// per-pixel probability that the corresponding router input port lies on a
/// flooding route.
///
/// Only the frames the detector flagged as abnormal need to be segmented
/// ("E ‖ N ‖ W ‖ S" in the paper's Figure 2), which keeps inference cost
/// low; segmenting a quiet frame simply yields an empty mask.
///
/// # Examples
///
/// ```
/// use dl2fence::DosLocalizer;
///
/// let localizer = DosLocalizer::new(8, 8, 7);
/// assert!(localizer.parameter_count() > 0);
/// ```
pub struct DosLocalizer {
    model: Sequential,
    rows: usize,
    cols: usize,
    kernels: usize,
    conv_layers: usize,
}

impl DosLocalizer {
    /// Number of convolution kernels per hidden layer in the paper's model.
    pub const DEFAULT_KERNELS: usize = 8;
    /// Number of convolution layers in the paper's model (two hidden plus the
    /// output projection).
    pub const DEFAULT_CONV_LAYERS: usize = 3;

    /// Builds an untrained localizer for a `rows × cols` mesh.
    pub fn new(rows: usize, cols: usize, seed: u64) -> Self {
        Self::with_architecture(
            rows,
            cols,
            Self::DEFAULT_KERNELS,
            Self::DEFAULT_CONV_LAYERS,
            seed,
        )
    }

    /// Builds a localizer with a custom number of kernels and convolution
    /// layers (used by the depth ablation; the paper notes that extra layers
    /// improve dice accuracy but inflate hardware overhead).
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is zero or `conv_layers < 2`.
    pub fn with_architecture(
        rows: usize,
        cols: usize,
        kernels: usize,
        conv_layers: usize,
        seed: u64,
    ) -> Self {
        assert!(kernels > 0, "at least one kernel is required");
        assert!(
            conv_layers >= 2,
            "the localizer needs at least two conv layers"
        );
        let mut model = Sequential::new()
            .push(Conv2d::new(1, kernels, 3, Padding::Same, seed))
            .push(Relu::new());
        for i in 0..conv_layers.saturating_sub(2) {
            model = model
                .push(Conv2d::new(
                    kernels,
                    kernels,
                    3,
                    Padding::Same,
                    seed.wrapping_add(1 + i as u64),
                ))
                .push(Relu::new());
        }
        model = model
            .push(Conv2d::new(
                kernels,
                1,
                3,
                Padding::Same,
                seed.wrapping_add(100),
            ))
            .push(Sigmoid::new());
        DosLocalizer {
            model,
            rows,
            cols,
            kernels,
            conv_layers,
        }
    }

    /// Rebuilds a localizer around previously exported weights.
    pub fn from_export(rows: usize, cols: usize, export: ModelExport) -> Self {
        DosLocalizer {
            model: export.into_model(),
            rows,
            cols,
            kernels: Self::DEFAULT_KERNELS,
            conv_layers: Self::DEFAULT_CONV_LAYERS,
        }
    }

    /// Number of convolution kernels per hidden layer.
    pub fn kernels(&self) -> usize {
        self.kernels
    }

    /// Number of convolution layers.
    pub fn conv_layers(&self) -> usize {
        self.conv_layers
    }

    /// Attaches a telemetry recorder: the model times every layer's forward
    /// and backward pass into `nn.localizer.*` histograms.
    pub fn set_telemetry(&mut self, recorder: dl2fence_telemetry::Recorder) {
        self.model.set_telemetry(recorder, "nn.localizer");
    }

    /// Total trainable parameters (used by the hardware model).
    pub fn parameter_count(&self) -> usize {
        self.model.param_count()
    }

    /// Builds the segmentation training dataset: one `(frame, mask)` pair per
    /// *attack* sample per cardinal direction, using the requested feature
    /// (the paper uses normalized BOC).
    ///
    /// Only attack samples are included because, at inference time, the
    /// localizer only ever sees frames the detector has already flagged as
    /// abnormal. The off-route directions of an attack sample still
    /// contribute (near-)empty masks, teaching the model to stay silent on
    /// benign congestion. All four frames of one sample share a single
    /// normalization scale (see [`frames_to_localizer_inputs`]).
    pub fn build_dataset(samples: &[LabeledSample], kind: FeatureKind) -> Dataset {
        let mut ds = Dataset::new();
        for s in samples {
            if !s.truth.under_attack {
                continue;
            }
            let frames = sample_frames(s, kind);
            let inputs = frames_to_localizer_inputs(frames);
            let masks = direction_masks(&s.truth);
            for dir in Direction::CARDINAL {
                let target =
                    Tensor::from_vec(masks[dir.index()].clone(), &[1, s.truth.rows, s.truth.cols]);
                ds.push(inputs[dir.index()].clone(), target);
            }
        }
        ds
    }

    /// Trains the localizer on `samples` with the Dice loss the paper uses
    /// as feedback.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or the frame shape does not match.
    pub fn train(
        &mut self,
        samples: &[LabeledSample],
        kind: FeatureKind,
        epochs: usize,
        seed: u64,
    ) -> TrainingReport {
        assert!(!samples.is_empty(), "cannot train on an empty sample set");
        assert_eq!(samples[0].vco.rows(), self.rows, "mesh rows mismatch");
        assert_eq!(samples[0].vco.cols(), self.cols, "mesh cols mismatch");
        let dataset = Self::build_dataset(samples, kind);
        assert!(
            !dataset.is_empty(),
            "the localizer needs at least one attack sample to train on"
        );
        let mut trainer = Trainer::new(
            Adam::new(0.01),
            DiceLoss::new(),
            TrainingConfig {
                epochs,
                batch_size: 4,
                shuffle_seed: seed,
                accuracy_threshold: 0.5,
            },
        );
        trainer.fit(&mut self.model, &dataset)
    }

    /// Segments one directional frame in isolation (normalizing the frame on
    /// its own), returning the per-pixel route probability map as a
    /// `rows × cols` buffer. Prefer [`DosLocalizer::segment_bundle`] when the
    /// whole four-direction bundle is available. Runs on the inference-only
    /// forward (no gradient caches).
    pub fn segment(&mut self, frame: &FeatureFrame) -> Vec<f32> {
        let input = frame_to_tensor(frame).reshape(&[1, 1, frame.rows(), frame.cols()]);
        let output = self.model.predict(&input);
        output.into_vec()
    }

    /// Segments all four directional frames of a bundle using a shared
    /// normalization scale (matching how the model was trained). Returns the
    /// per-direction probability maps in E, N, W, S order.
    ///
    /// The four frames run as **one** batched `[4, 1, h, w]` model
    /// invocation; per-direction maps are bit-identical to segmenting each
    /// frame separately.
    pub fn segment_bundle(&mut self, frames: &DirectionalFrames) -> [Vec<f32>; 4] {
        let inputs = frames_to_localizer_inputs(frames);
        let input_refs: Vec<&Tensor> = inputs.iter().collect();
        let (h, w) = (frames.rows(), frames.cols());
        let batched = Tensor::stack(&input_refs).reshape(&[4, 1, h, w]);
        let output = self.model.predict(&batched);
        let data = output.data();
        let plane = h * w;
        [
            data[..plane].to_vec(),
            data[plane..2 * plane].to_vec(),
            data[2 * plane..3 * plane].to_vec(),
            data[3 * plane..].to_vec(),
        ]
    }

    /// The hard Dice coefficient between a segmentation of `frame` and a
    /// ground-truth mask, thresholding the prediction at 0.5.
    pub fn dice_against(&mut self, frame: &FeatureFrame, mask: &[f32]) -> f64 {
        let seg = self.segment(frame);
        let pred = Tensor::from_vec(seg, &[frame.rows() * frame.cols()]);
        let truth = Tensor::from_vec(mask.to_vec(), &[mask.len()]);
        dice_coefficient(&pred, &truth, 0.5)
    }

    /// Exports the trained weights for storage.
    pub fn export(&self) -> ModelExport {
        self.model.export()
    }
}

impl std::fmt::Debug for DosLocalizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DosLocalizer({}x{}, {} kernels, {} conv layers, {} params)",
            self.rows,
            self.cols,
            self.kernels,
            self.conv_layers,
            self.parameter_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_monitor::dataset::{CollectionConfig, DatasetGenerator, ScenarioSpec};
    use noc_sim::{NocConfig, NodeId};
    use noc_traffic::{BenignWorkload, SyntheticPattern};

    fn samples_with_row_attack() -> Vec<LabeledSample> {
        let config = CollectionConfig {
            noc: NocConfig::mesh(8, 8),
            warmup_cycles: 150,
            sample_period: 400,
            samples_per_run: 3,
            seed: 9,
        };
        let generator = DatasetGenerator::new(config);
        let workload = BenignWorkload::Synthetic(SyntheticPattern::UniformRandom, 0.01);
        let specs = vec![
            ScenarioSpec::attacked(workload, vec![NodeId(7)], NodeId(0), 0.9),
            ScenarioSpec::attacked(workload, vec![NodeId(56)], NodeId(63), 0.9),
            ScenarioSpec::benign(workload),
        ];
        generator.collect(&specs)
    }

    #[test]
    fn segmentation_output_covers_the_mesh() {
        let samples = samples_with_row_attack();
        let mut loc = DosLocalizer::new(8, 8, 3);
        let seg = loc.segment(samples[0].boc.frame(Direction::East));
        assert_eq!(seg.len(), 64);
        assert!(seg.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn dataset_has_four_entries_per_attack_sample() {
        let samples = samples_with_row_attack();
        let attack_samples = samples.iter().filter(|s| s.truth.under_attack).count();
        let ds = DosLocalizer::build_dataset(&samples, FeatureKind::Boc);
        assert_eq!(ds.len(), attack_samples * 4);
    }

    #[test]
    fn training_improves_dice_on_attack_route() {
        let samples = samples_with_row_attack();
        let mut loc = DosLocalizer::new(8, 8, 11);
        loc.train(&samples, FeatureKind::Boc, 60, 1);
        // Evaluate on the first attack sample (route of 7 -> 0 along row 0,
        // arriving on East input ports).
        let segs = loc.segment_bundle(&samples[0].boc);
        let mask = direction_masks(&samples[0].truth)[Direction::East.index()].clone();
        let pred = Tensor::from_vec(segs[Direction::East.index()].clone(), &[64]);
        let truth = Tensor::from_vec(mask, &[64]);
        let dice = dice_coefficient(&pred, &truth, 0.5);
        assert!(dice > 0.5, "trained dice too low: {dice}");
    }

    #[test]
    fn batched_bundle_segmentation_is_bitwise_identical_to_per_frame() {
        let samples = samples_with_row_attack();
        let mut loc = DosLocalizer::new(8, 8, 6);
        let frames = &samples[0].boc;
        let batched = loc.segment_bundle(frames);
        // Reproduce the pre-batching behaviour: one [1,1,h,w] forward per
        // direction over the same shared-scale inputs.
        let inputs = crate::input::frames_to_localizer_inputs(frames);
        for (i, input) in inputs.iter().enumerate() {
            let single = loc
                .model
                .predict(&input.reshape(&[1, 1, frames.rows(), frames.cols()]));
            assert_eq!(batched[i].len(), single.data().len());
            for (a, b) in batched[i].iter().zip(single.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "direction {i} drifted");
            }
        }
    }

    #[test]
    fn depth_ablation_builds_deeper_models() {
        let shallow = DosLocalizer::with_architecture(8, 8, 8, 2, 0);
        let deep = DosLocalizer::with_architecture(8, 8, 8, 4, 0);
        assert!(deep.parameter_count() > shallow.parameter_count());
        assert_eq!(deep.conv_layers(), 4);
    }

    #[test]
    fn export_round_trip_preserves_segmentation() {
        let samples = samples_with_row_attack();
        let mut loc = DosLocalizer::new(8, 8, 5);
        let frame = samples[0].boc.frame(Direction::East);
        let before = loc.segment(frame);
        let mut restored = DosLocalizer::from_export(8, 8, loc.export());
        let after = restored.segment(frame);
        for (a, b) in before.iter().zip(&after) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "at least two conv layers")]
    fn single_layer_localizer_panics() {
        DosLocalizer::with_architecture(8, 8, 8, 1, 0);
    }
}
