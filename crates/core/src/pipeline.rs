//! The end-to-end DL2Fence pipeline: detect → segment → fuse → localize.

use crate::detector::{DetectionResult, DosDetector};
use crate::fusion::{FusionResult, MultiFrameFusion};
use crate::input::sample_frames;
use crate::localizer::DosLocalizer;
use crate::tlm::TableLikeMethod;
use crate::vce::VictimComplementingEnhancement;
use dl2fence_telemetry::Recorder;
use noc_monitor::{DirectionalFrames, FeatureKind, FrameSampler, LabeledSample};
use noc_sim::{Network, NodeId};
use serde::{Deserialize, Serialize};
use tinycnn::serialize::ModelExport;
use tinycnn::TrainingReport;

/// Configuration of a [`Dl2Fence`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FenceConfig {
    /// Mesh rows of the protected NoC.
    pub rows: usize,
    /// Mesh columns.
    pub cols: usize,
    /// Feature used by the detector (the paper chooses VCO because it needs
    /// no normalization and less memory).
    pub detection_feature: FeatureKind,
    /// Feature used by the localizer (the paper chooses BOC for its clearer
    /// route profiles).
    pub localization_feature: FeatureKind,
    /// Whether the Victim Completing Enhancement stage is enabled.
    pub vce_enabled: bool,
    /// Binarization threshold used by Multi-Frame Fusion.
    pub fusion_threshold: f32,
    /// Detector training epochs.
    pub detector_epochs: usize,
    /// Localizer training epochs.
    pub localizer_epochs: usize,
    /// Master seed for model initialization and training shuffles.
    pub seed: u64,
}

impl FenceConfig {
    /// The paper's chosen configuration for a `rows × cols` mesh: VCO
    /// detection, BOC localization, VCE enabled.
    pub fn new(rows: usize, cols: usize) -> Self {
        FenceConfig {
            rows,
            cols,
            detection_feature: FeatureKind::Vco,
            localization_feature: FeatureKind::Boc,
            vce_enabled: true,
            fusion_threshold: 0.5,
            detector_epochs: 40,
            localizer_epochs: 30,
            seed: 0xDF,
        }
    }

    /// Uses the same feature for both tasks (the single-feature ablations of
    /// Tables 1 and 2).
    pub fn with_single_feature(mut self, kind: FeatureKind) -> Self {
        self.detection_feature = kind;
        self.localization_feature = kind;
        self
    }

    /// Enables or disables the VCE stage.
    pub fn with_vce(mut self, enabled: bool) -> Self {
        self.vce_enabled = enabled;
        self
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the training epoch counts.
    pub fn with_epochs(mut self, detector: usize, localizer: usize) -> Self {
        self.detector_epochs = detector;
        self.localizer_epochs = localizer;
        self
    }
}

/// The result of analysing one monitoring window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FenceReport {
    /// Detector output.
    pub detection: DetectionResult,
    /// Whether the pipeline escalated to localization (equals
    /// `detection.detected`).
    pub detected: bool,
    /// Victims (the attacking route) after fusion and optional VCE; empty
    /// when no attack was detected.
    pub victims: Vec<NodeId>,
    /// Localized attackers; empty when no attack was detected.
    pub attackers: Vec<NodeId>,
    /// The fused frame, for inspection/visualization.
    pub fusion: Option<FusionResult>,
}

/// Training history of both models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FenceTrainingReport {
    /// Detector training history.
    pub detector: TrainingReport,
    /// Localizer training history.
    pub localizer: TrainingReport,
}

/// A serializable snapshot of a trained [`Dl2Fence`]: the configuration plus
/// both f32 model exports. This is the unit a serving layer ships, versions
/// and hot-swaps — [`Dl2Fence::from_export`] rebuilds an instance that is
/// bit-identical to the exporter on every input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FenceModelExport {
    /// The configuration the models were trained under.
    pub config: FenceConfig,
    /// Detector weights.
    pub detector: ModelExport,
    /// Localizer weights.
    pub localizer: ModelExport,
}

impl FenceModelExport {
    /// Serializes the export to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if serialization fails.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses an export from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if the JSON is malformed.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// The DL2Fence framework instance: a trained detector and localizer plus
/// the fusion, VCE and TLM post-processing stages.
pub struct Dl2Fence {
    config: FenceConfig,
    detector: DosDetector,
    localizer: DosLocalizer,
    fusion: MultiFrameFusion,
    vce: VictimComplementingEnhancement,
    tlm: TableLikeMethod,
    /// Stage-timing recorder; disabled (free) by default.
    telemetry: Recorder,
}

impl Dl2Fence {
    /// Creates an untrained framework instance from a configuration.
    pub fn new(config: FenceConfig) -> Self {
        let fusion = MultiFrameFusion::for_mesh(config.rows, config.cols)
            .with_threshold(config.fusion_threshold);
        Dl2Fence {
            detector: DosDetector::new(config.rows, config.cols, config.seed),
            localizer: DosLocalizer::new(config.rows, config.cols, config.seed.wrapping_add(7)),
            fusion,
            vce: VictimComplementingEnhancement::new(config.rows, config.cols),
            tlm: TableLikeMethod::new(config.rows, config.cols),
            config,
            telemetry: Recorder::default(),
        }
    }

    /// Attaches a telemetry recorder: [`Self::analyze_frames`] times the
    /// detect/segment/fuse/localize stages into `stage.*` histograms,
    /// [`Self::train`] times both model fits, and the CNN models time every
    /// layer pass (`nn.detector.*` / `nn.localizer.*`). A disabled recorder
    /// (the default) keeps everything on the untimed fast path, so outputs
    /// are bit-identical with telemetry on or off.
    pub fn set_telemetry(&mut self, recorder: Recorder) {
        self.detector.set_telemetry(recorder.clone());
        self.localizer.set_telemetry(recorder.clone());
        self.telemetry = recorder;
    }

    /// The configuration this instance was built from.
    pub fn config(&self) -> &FenceConfig {
        &self.config
    }

    /// The detector model (e.g. to export weights).
    pub fn detector(&self) -> &DosDetector {
        &self.detector
    }

    /// The localizer model.
    pub fn localizer(&self) -> &DosLocalizer {
        &self.localizer
    }

    /// Exports the full trained pipeline (configuration + both f32 models)
    /// as one serializable artifact.
    pub fn export_model(&self) -> FenceModelExport {
        FenceModelExport {
            config: self.config,
            detector: self.detector.export(),
            localizer: self.localizer.export(),
        }
    }

    /// Rebuilds a pipeline from an exported artifact. The restored instance
    /// produces bit-identical reports to the exporter: the fusion/VCE/TLM
    /// stages are pure functions of the configuration, and the model exports
    /// round-trip weights losslessly.
    pub fn from_export(export: FenceModelExport) -> Self {
        let config = export.config;
        let fusion = MultiFrameFusion::for_mesh(config.rows, config.cols)
            .with_threshold(config.fusion_threshold);
        Dl2Fence {
            detector: DosDetector::from_export(config.rows, config.cols, export.detector),
            localizer: DosLocalizer::from_export(config.rows, config.cols, export.localizer),
            fusion,
            vce: VictimComplementingEnhancement::new(config.rows, config.cols),
            tlm: TableLikeMethod::new(config.rows, config.cols),
            config,
            telemetry: Recorder::default(),
        }
    }

    /// Trains both CNN models on a collected dataset.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or its frames do not match the configured
    /// mesh size.
    pub fn train(&mut self, samples: &[LabeledSample]) -> FenceTrainingReport {
        let rec = self.telemetry.clone();
        let detector = rec.time("train.detector", || {
            self.detector.train(
                samples,
                self.config.detection_feature,
                self.config.detector_epochs,
                self.config.seed,
            )
        });
        let localizer = rec.time("train.localizer", || {
            self.localizer.train(
                samples,
                self.config.localization_feature,
                self.config.localizer_epochs,
                self.config.seed.wrapping_add(1),
            )
        });
        FenceTrainingReport {
            detector,
            localizer,
        }
    }

    /// Analyses one pair of frame bundles (the detector sees
    /// `detection_frames`, the localizer `localization_frames`).
    pub fn analyze_frames(
        &mut self,
        detection_frames: &DirectionalFrames,
        localization_frames: &DirectionalFrames,
    ) -> FenceReport {
        let rec = self.telemetry.clone();
        let detection = rec.time("stage.detect", || self.detector.detect(detection_frames));
        self.report_for_detection(detection, localization_frames)
    }

    /// Runs the post-detection stages (segment → fuse → localize) for one
    /// window, or short-circuits when nothing was detected.
    ///
    /// This is the tail a serving layer runs after producing the
    /// [`DetectionResult`] itself — e.g. from a hot-swapped
    /// [`crate::QuantizedDetector`] — while keeping the f32 localization
    /// stack. [`Self::analyze_frames`] is `detect` + this.
    pub fn report_for_detection(
        &mut self,
        detection: DetectionResult,
        localization_frames: &DirectionalFrames,
    ) -> FenceReport {
        if !detection.detected {
            return FenceReport {
                detection,
                detected: false,
                victims: Vec::new(),
                attackers: Vec::new(),
                fusion: None,
            };
        }
        let rec = self.telemetry.clone();
        // Segment each directional frame (shared normalization) and fuse.
        let rows = localization_frames.rows();
        let cols = localization_frames.cols();
        let segmentations = rec.time("stage.segment", || {
            self.localizer.segment_bundle(localization_frames)
        });
        let fusion = rec.time("stage.fuse", || {
            self.fusion.fuse(&segmentations, rows, cols)
        });
        let (victims, attackers) = rec.time("stage.localize", || {
            let victims = if self.config.vce_enabled {
                self.vce.complete(&fusion)
            } else {
                fusion.victims.clone()
            };
            let attackers = self.tlm.localize(&fusion, &victims);
            (victims, attackers)
        });
        FenceReport {
            detection,
            detected: true,
            victims,
            attackers,
            fusion: Some(fusion),
        }
    }

    /// Analyses one labeled sample (convenience for evaluation harnesses).
    pub fn analyze(&mut self, sample: &LabeledSample) -> FenceReport {
        let det = sample_frames(sample, self.config.detection_feature);
        let loc = sample_frames(sample, self.config.localization_feature);
        self.analyze_frames(det, loc)
    }

    /// Detection frames per batched-inference chunk in
    /// [`Self::analyze_batch`]. Keeps the stacked input tensor bounded
    /// (a chunk of an 8×8 mesh is ~64 KiB) while amortizing the per-layer
    /// dispatch over many windows.
    pub const DETECT_BATCH: usize = 64;

    /// Analyses a set of labeled samples with **batched** detector inference:
    /// detection frames are stacked in chunks of [`Self::DETECT_BATCH`] and
    /// classified in one model invocation per chunk, then only the windows
    /// that were flagged run the (much rarer) segment → fuse → localize tail.
    ///
    /// Reports are bit-identical to calling [`Self::analyze`] per sample —
    /// every layer of the CNN treats batch elements independently — so
    /// evaluation harnesses can batch freely without perturbing golden
    /// outputs.
    pub fn analyze_batch(&mut self, samples: &[LabeledSample]) -> Vec<FenceReport> {
        let rec = self.telemetry.clone();
        let mut reports = Vec::with_capacity(samples.len());
        for chunk in samples.chunks(Self::DETECT_BATCH) {
            let bundles: Vec<&DirectionalFrames> = chunk
                .iter()
                .map(|s| sample_frames(s, self.config.detection_feature))
                .collect();
            let detections = rec.time("stage.detect", || self.detector.detect_batch(&bundles));
            for (sample, detection) in chunk.iter().zip(detections) {
                let loc = sample_frames(sample, self.config.localization_feature);
                reports.push(self.report_for_detection(detection, loc));
            }
        }
        reports
    }

    /// Analyses a set of already-assembled monitoring windows with batched
    /// detector inference — the serving-side analogue of
    /// [`Self::analyze_batch`], which takes [`LabeledSample`]s instead. Each
    /// window pairs the detection-feature bundle with the
    /// localization-feature bundle; detection frames are stacked in chunks of
    /// [`Self::DETECT_BATCH`] and classified in one model invocation per
    /// chunk, and only flagged windows run the segment → fuse → localize
    /// tail. Reports are bit-identical to calling [`Self::analyze_frames`]
    /// per window, and an empty slice (an idle flush tick) returns an empty
    /// vector without touching the models.
    pub fn analyze_frames_batch(
        &mut self,
        windows: &[(&DirectionalFrames, &DirectionalFrames)],
    ) -> Vec<FenceReport> {
        let rec = self.telemetry.clone();
        let mut reports = Vec::with_capacity(windows.len());
        for chunk in windows.chunks(Self::DETECT_BATCH) {
            let bundles: Vec<&DirectionalFrames> = chunk.iter().map(|(det, _)| *det).collect();
            let detections = rec.time("stage.detect", || self.detector.detect_batch(&bundles));
            for ((_, loc), detection) in chunk.iter().zip(detections) {
                reports.push(self.report_for_detection(detection, loc));
            }
        }
        reports
    }

    /// Samples the live network and analyses the current monitoring window.
    /// The caller is responsible for resetting BOC counters between windows.
    pub fn monitor(&mut self, network: &Network) -> FenceReport {
        let det = FrameSampler::sample(network, self.config.detection_feature);
        let loc = FrameSampler::sample(network, self.config.localization_feature);
        self.analyze_frames(&det, &loc)
    }
}

impl std::fmt::Debug for Dl2Fence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Dl2Fence({}x{}, detect on {}, localize on {}, VCE {})",
            self.config.rows,
            self.config.cols,
            self.config.detection_feature,
            self.config.localization_feature,
            if self.config.vce_enabled { "on" } else { "off" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_monitor::dataset::{CollectionConfig, DatasetGenerator, ScenarioSpec};
    use noc_sim::NocConfig;
    use noc_traffic::{BenignWorkload, SyntheticPattern};

    fn collect_samples() -> Vec<LabeledSample> {
        let config = CollectionConfig {
            noc: NocConfig::mesh(8, 8),
            warmup_cycles: 150,
            sample_period: 400,
            samples_per_run: 3,
            seed: 13,
        };
        let generator = DatasetGenerator::new(config);
        let workload = BenignWorkload::Synthetic(SyntheticPattern::UniformRandom, 0.015);
        let specs = vec![
            ScenarioSpec::attacked(workload, vec![NodeId(7)], NodeId(0), 0.9),
            ScenarioSpec::attacked(workload, vec![NodeId(63)], NodeId(56), 0.9),
            ScenarioSpec::attacked(workload, vec![NodeId(56)], NodeId(0), 0.9),
            ScenarioSpec::benign(workload),
            ScenarioSpec::benign(workload),
        ];
        generator.collect(&specs)
    }

    #[test]
    fn untrained_pipeline_produces_a_report() {
        let samples = collect_samples();
        let mut fence = Dl2Fence::new(FenceConfig::new(8, 8).with_epochs(1, 1));
        let report = fence.analyze(&samples[0]);
        // Untrained output is arbitrary but must be structurally valid.
        assert!((0.0..=1.0).contains(&report.detection.probability));
        if !report.detected {
            assert!(report.victims.is_empty());
            assert!(report.attackers.is_empty());
        }
    }

    #[test]
    fn trained_pipeline_detects_and_localizes() {
        let samples = collect_samples();
        let mut fence = Dl2Fence::new(FenceConfig::new(8, 8).with_epochs(40, 30).with_seed(2));
        fence.train(&samples);

        // Evaluate on the training samples (a smoke check of the full loop;
        // generalization is measured by the evaluation module / benches).
        let mut detected_attacks = 0;
        let mut total_attacks = 0;
        for s in &samples {
            let report = fence.analyze(s);
            if s.truth.under_attack {
                total_attacks += 1;
                if report.detected {
                    detected_attacks += 1;
                    assert!(
                        !report.victims.is_empty(),
                        "a detected attack must localize at least one victim"
                    );
                }
            }
        }
        assert!(
            detected_attacks * 2 >= total_attacks,
            "too few attacks detected: {detected_attacks}/{total_attacks}"
        );
    }

    #[test]
    fn telemetry_records_stages_without_changing_outputs() {
        use dl2fence_telemetry::{MemorySink, Telemetry};
        use std::sync::Arc;
        let samples = collect_samples();
        let config = FenceConfig::new(8, 8).with_epochs(4, 3).with_seed(2);

        let mut plain = Dl2Fence::new(config);
        plain.train(&samples);
        let baseline: Vec<FenceReport> = samples.iter().map(|s| plain.analyze(s)).collect();

        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::with_sink(sink.clone());
        let rec = tel.recorder();
        let mut timed = Dl2Fence::new(config);
        timed.set_telemetry(rec.clone());
        timed.train(&samples);
        let reports: Vec<FenceReport> = samples.iter().map(|s| timed.analyze(s)).collect();
        rec.flush();

        assert_eq!(baseline, reports, "telemetry must not perturb the pipeline");
        let names: Vec<String> = sink.take().iter().map(|e| e.name().to_string()).collect();
        for expected in ["stage.detect", "train.detector", "train.localizer"] {
            assert!(
                names.iter().any(|n| n == expected),
                "missing {expected} in {names:?}"
            );
        }
        assert!(
            names.iter().any(|n| n.starts_with("nn.detector.fwd.")),
            "per-layer detector timings missing"
        );
    }

    #[test]
    fn analyze_batch_is_bit_identical_to_per_sample_analyze() {
        let samples = collect_samples();
        let mut fence = Dl2Fence::new(FenceConfig::new(8, 8).with_epochs(6, 4).with_seed(2));
        fence.train(&samples);
        let batched = fence.analyze_batch(&samples);
        assert_eq!(batched.len(), samples.len());
        for (sample, batched_report) in samples.iter().zip(&batched) {
            let single = fence.analyze(sample);
            assert_eq!(
                single.detection.probability.to_bits(),
                batched_report.detection.probability.to_bits(),
                "batched detection probability drifted"
            );
            assert_eq!(&single, batched_report, "batched report diverged");
        }
    }

    #[test]
    fn empty_and_singleton_batches_are_total() {
        let samples = collect_samples();
        let mut fence = Dl2Fence::new(FenceConfig::new(8, 8).with_epochs(1, 1));
        // Empty flush tick: no panic, no output, models untouched.
        assert!(fence.analyze_batch(&[]).is_empty());
        assert!(fence.analyze_frames_batch(&[]).is_empty());
        // Lone straggler bundle: bit-identical to the per-sample path.
        let single = fence.analyze(&samples[0]);
        let batched = fence.analyze_batch(&samples[..1]);
        assert_eq!(batched.len(), 1);
        assert_eq!(single, batched[0]);
    }

    #[test]
    fn analyze_frames_batch_matches_per_window_analyze_frames() {
        let samples = collect_samples();
        let mut fence = Dl2Fence::new(FenceConfig::new(8, 8).with_epochs(6, 4).with_seed(2));
        fence.train(&samples);
        let windows: Vec<(&DirectionalFrames, &DirectionalFrames)> = samples
            .iter()
            .map(|s| {
                (
                    sample_frames(s, fence.config().detection_feature),
                    sample_frames(s, fence.config().localization_feature),
                )
            })
            .collect();
        let batched = fence.analyze_frames_batch(&windows);
        assert_eq!(batched.len(), windows.len());
        for ((det, loc), batched_report) in windows.iter().zip(&batched) {
            let single = fence.analyze_frames(det, loc);
            assert_eq!(
                single.detection.probability.to_bits(),
                batched_report.detection.probability.to_bits(),
                "frame-batched detection probability drifted"
            );
            assert_eq!(&single, batched_report, "frame-batched report diverged");
        }
    }

    #[test]
    fn model_export_round_trips_bit_identically() {
        let samples = collect_samples();
        let mut fence = Dl2Fence::new(FenceConfig::new(8, 8).with_epochs(6, 4).with_seed(5));
        fence.train(&samples);

        let json = fence.export_model().to_json().unwrap();
        let restored_export = FenceModelExport::from_json(&json).unwrap();
        assert_eq!(restored_export.config, *fence.config());
        let mut restored = Dl2Fence::from_export(restored_export);

        for s in &samples {
            let a = fence.analyze(s);
            let b = restored.analyze(s);
            assert_eq!(
                a.detection.probability.to_bits(),
                b.detection.probability.to_bits(),
                "restored pipeline's probability drifted"
            );
            assert_eq!(a, b, "restored pipeline diverged from the exporter");
        }
    }

    #[test]
    fn config_builders_apply() {
        let cfg = FenceConfig::new(16, 16)
            .with_single_feature(FeatureKind::Boc)
            .with_vce(false)
            .with_seed(9)
            .with_epochs(5, 6);
        assert_eq!(cfg.detection_feature, FeatureKind::Boc);
        assert_eq!(cfg.localization_feature, FeatureKind::Boc);
        assert!(!cfg.vce_enabled);
        assert_eq!(cfg.detector_epochs, 5);
        assert_eq!(cfg.localizer_epochs, 6);
    }

    #[test]
    fn monitor_analyses_a_live_network() {
        use noc_traffic::{AttackScenario, FloodingAttack};
        let mut scenario = AttackScenario::builder(NocConfig::mesh(8, 8))
            .benign(SyntheticPattern::UniformRandom, 0.01)
            .attack(FloodingAttack::new(vec![NodeId(7)], NodeId(0), 0.9))
            .seed(3)
            .build();
        scenario.run(1_000);
        let mut fence = Dl2Fence::new(FenceConfig::new(8, 8).with_epochs(1, 1));
        let report = fence.monitor(scenario.network());
        assert!((0.0..=1.0).contains(&report.detection.probability));
    }
}
