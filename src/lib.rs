//! Workspace-root helper crate for the DL2Fence reproduction.
//!
//! This crate exists so the repository-level `examples/` and `tests/`
//! directories (the runnable demos and the cross-crate integration tests)
//! have a package to live in. It re-exports the public crates of the
//! workspace and provides a couple of small conveniences shared by the
//! examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dl2fence;
pub use hw_overhead;
pub use noc_monitor;
pub use noc_sim;
pub use noc_traffic;
pub use tinycnn;

use noc_monitor::dataset::specs_for_benchmark;
use noc_monitor::{CollectionConfig, DatasetGenerator, LabeledSample};
use noc_sim::NocConfig;
use noc_traffic::{BenignWorkload, SyntheticPattern};

/// Collects a small labeled dataset on an `mesh × mesh` NoC with a uniform
/// random benign workload — the shared starting point of several examples.
///
/// `attacks` attack placements and `benign_runs` attack-free runs are
/// simulated at FIR 0.8 with short sampling windows, so this finishes in a
/// few seconds even in debug builds.
pub fn quick_dataset(mesh: usize, attacks: usize, benign_runs: usize) -> Vec<LabeledSample> {
    let generator = DatasetGenerator::new(CollectionConfig::quick(NocConfig::mesh(mesh, mesh)));
    let workload = BenignWorkload::Synthetic(SyntheticPattern::UniformRandom, 0.02);
    generator.collect(&specs_for_benchmark(
        workload,
        mesh,
        mesh,
        attacks,
        benign_runs,
        0.8,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_dataset_contains_both_classes() {
        let samples = quick_dataset(8, 2, 1);
        assert!(samples.iter().any(|s| s.truth.under_attack));
        assert!(samples.iter().any(|s| !s.truth.under_attack));
    }
}
